(** Integration tests: the ten evaluation scenarios reproduce the thesis's
    qualitative violation shapes (§5.4, Appendix D), and the repaired
    counterfactual eliminates the collisions. *)

let outcome_cache : (int, Scenarios.Runner.outcome) Hashtbl.t = Hashtbl.create 10

let outcome n =
  match Hashtbl.find_opt outcome_cache n with
  | Some o -> o
  | None ->
      let o = Scenarios.Runner.run (Scenarios.Defs.get n) in
      Hashtbl.add outcome_cache n o;
      o

let violated_ids o =
  List.filter_map
    (fun (r : Vehicle.Monitors.result) ->
      if r.Vehicle.Monitors.violations <> [] then
        Some r.Vehicle.Monitors.entry.Vehicle.Monitors.id
      else None)
    o.Scenarios.Runner.results

let check_violated o id = Alcotest.(check bool) (id ^ " violated") true (List.mem id (violated_ids o))
let check_clean o id = Alcotest.(check bool) (id ^ " clean") false (List.mem id (violated_ids o))

let report o n = List.assoc n o.Scenarios.Runner.reports

(* ------------------------------------------------------------------ *)

let test_scenario_1 () =
  let o = outcome 1 in
  (* Early termination: CA fails to stop the vehicle (§5.4.1). *)
  Alcotest.(check bool) "collision" true o.Scenarios.Runner.collided;
  Alcotest.(check bool) "terminated early" true (o.Scenarios.Runner.end_time < 19.9);
  (* Goals 1 and 2 violated at the vehicle level. *)
  check_violated o "1";
  check_violated o "2";
  (* Goal 1: no corresponding subgoal violations — pure false negatives. *)
  Alcotest.(check bool) "goal 1 only false negatives" true
    ((report o 1).Rtmon.Report.false_negatives > 0
    && (report o 1).Rtmon.Report.hits = 0);
  check_clean o "1A";
  (* The CA request-jerk subgoal fires (once per brake cancel). *)
  check_violated o "2B.CA";
  (* 2A stays clean: the command jump is attributed to the driver (§5.4.1). *)
  check_clean o "2A";
  (* PA's ghost requests violate its subgoals while masked by redundancy. *)
  check_violated o "2B.PA";
  check_violated o "4B.PA";
  check_clean o "4";
  Alcotest.(check bool) "false positives exist" true
    ((report o 2).Rtmon.Report.false_positives > 0
    || (report o 4).Rtmon.Report.false_positives > 0)

let test_scenario_2 () =
  let o = outcome 2 in
  Alcotest.(check bool) "collision" true o.Scenarios.Runner.collided;
  Alcotest.(check bool) "earlier than scenario 1" true
    (o.Scenarios.Runner.end_time < (outcome 1).Scenarios.Runner.end_time);
  (* Goals 1–3 violated (§5.4.2). *)
  check_violated o "1";
  check_violated o "2";
  check_violated o "3";
  check_violated o "3A";
  (* 2A violated exactly once for one state (the thesis: "violated only
     once for 1 ms"). *)
  let a2 =
    List.find
      (fun (r : Vehicle.Monitors.result) -> r.Vehicle.Monitors.entry.Vehicle.Monitors.id = "2A")
      o.Scenarios.Runner.results
  in
  Alcotest.(check int) "2A once" 1 (List.length a2.Vehicle.Monitors.violations);
  Alcotest.(check int) "2A for one state" 1
    (List.hd a2.Vehicle.Monitors.violations).Rtmon.Violation.length;
  (* 1A clean: the rerouted command is 0, under the threshold. *)
  check_clean o "1A"

let test_scenario_3 () =
  let o = outcome 3 in
  (* CA's intermittent braking fails against the held throttle (§5.4.3). *)
  Alcotest.(check bool) "collision" true o.Scenarios.Runner.collided;
  check_violated o "1";
  check_violated o "2";
  check_violated o "2B.CA";
  (* More chatter cycles than scenario 1 (the throttle keeps re-arming CA). *)
  let count id o =
    List.length
      (List.find
         (fun (r : Vehicle.Monitors.result) ->
           r.Vehicle.Monitors.entry.Vehicle.Monitors.id = id)
         o.Scenarios.Runner.results)
        .Vehicle.Monitors.violations
  in
  Alcotest.(check bool) "throttle fight chatters more" true
    (count "2" o >= count "2" (outcome 1));
  (* The ACC disengaged-control defect (Fig. 5.6) stays invisible to the
     monitors: requests are within bounds and the requesting flag is down. *)
  check_clean o "5B.ACC"

let test_scenario_4 () =
  let o = outcome 4 in
  Alcotest.(check bool) "no collision" false o.Scenarios.Runner.collided;
  (* ACC briefly takes control under throttle (Fig. 5.8): goal 5 hit at
     vehicle, arbiter and feature levels. *)
  check_violated o "5";
  check_violated o "5A";
  check_violated o "5B.ACC";
  Alcotest.(check bool) "goal 5 hit" true ((report o 5).Rtmon.Report.hits > 0);
  (* The post-handback hunting violates the jerk goal with no subgoal
     correspondence. *)
  check_violated o "2";
  Alcotest.(check bool) "goal 2 has false negatives" true
    ((report o 2).Rtmon.Report.false_negatives > 0)

let test_scenario_5 () =
  let o = outcome 5 in
  check_violated o "5";
  check_violated o "5A";
  check_violated o "5B.ACC";
  (* The 0.101 s handoff (Fig. 5.9): ACC regains control 101 ms after the
     throttle release at 8.0 s. *)
  let tr = o.Scenarios.Runner.trace in
  let src_at t =
    Tl.State.sym (Tl.Trace.get tr (int_of_float (t /. Vehicle.System.dt)))
      Vehicle.Signals.accel_source
  in
  Alcotest.(check string) "driver before release" "Driver" (src_at 7.9);
  Alcotest.(check string) "driver at +0.09" "Driver" (src_at 8.09);
  Alcotest.(check string) "ACC at +0.11" "ACC" (src_at 8.11)

let test_scenario_6 () =
  let o = outcome 6 in
  (* LCA engaged: immediate selection (Fig. 5.10) and negative speed with
     ACC/LCA active (Fig. 5.11) violating goal 9. *)
  check_violated o "9";
  check_violated o "9A";
  check_violated o "9B.ACC";
  check_violated o "9B.LCA";
  check_violated o "3";
  Alcotest.(check bool) "goal 9 hit by subgoals" true ((report o 9).Rtmon.Report.hits > 0);
  (* speed actually went negative *)
  let minv =
    Tl.Trace.fold
      (fun acc s -> Float.min acc (Tl.State.float s Vehicle.Signals.host_speed))
      infinity o.Scenarios.Runner.trace
  in
  Alcotest.(check bool) "negative speed" true (minv < -0.01);
  (* the steering command never follows LCA's request (Fig. 5.10) *)
  let steer_moved =
    Tl.Trace.fold
      (fun acc s -> acc || Float.abs (Tl.State.float s Vehicle.Signals.steer_cmd) > 0.01)
      false o.Scenarios.Runner.trace
  in
  Alcotest.(check bool) "steering command unchanged" false steer_moved

let test_scenario_7 () =
  let o = outcome 7 in
  (* RCA never engages: collision with NO goal violation — the hazard is a
     missing goal, invisible to monitoring (§5.4.7, §6.2). *)
  Alcotest.(check bool) "collision behind" true o.Scenarios.Runner.collided;
  List.iter (fun n -> check_clean o (string_of_int n)) [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  (* RCA stayed inert *)
  Alcotest.(check bool) "RCA never active" true
    (Tl.Trace.fold
       (fun acc s -> acc && not (Tl.State.bool s (Vehicle.Signals.active "RCA")))
       true o.Scenarios.Runner.trace)

let test_scenario_8 () =
  let o = outcome 8 in
  (* ACC engages in reverse and is selected ~50 ms later (Fig. 5.13). *)
  check_violated o "9";
  check_violated o "9A";
  check_violated o "9B.ACC";
  Alcotest.(check bool) "goal 9 hit" true ((report o 9).Rtmon.Report.hits > 0);
  let tr = o.Scenarios.Runner.trace in
  let src_at t =
    Tl.State.sym (Tl.Trace.get tr (int_of_float (t /. Vehicle.System.dt)))
      Vehicle.Signals.accel_source
  in
  Alcotest.(check string) "not selected at 2.03" "Driver" (src_at 2.03);
  Alcotest.(check string) "selected at 2.06" "ACC" (src_at 2.06)

let test_scenario_9 () =
  let o = outcome 9 in
  Alcotest.(check bool) "no collision" false o.Scenarios.Runner.collided;
  (* PA selected but command ≠ request (Fig. 5.14). *)
  let tr = o.Scenarios.Runner.trace in
  let at t v = Tl.State.get (Tl.Trace.get tr (int_of_float (t /. Vehicle.System.dt))) v in
  Alcotest.(check string) "PA selected" "PA"
    (match at 3.0 Vehicle.Signals.accel_source with Tl.Value.Sym s -> s | _ -> "?");
  let req = Tl.Value.to_float (at 3.0 (Vehicle.Signals.accel_req "PA")) in
  let cmd = Tl.Value.to_float (at 3.0 Vehicle.Signals.accel_cmd) in
  Alcotest.(check bool) "command differs from request" true (Float.abs (req -. cmd) > 0.2);
  (* the masked request still violates the PA subgoals — false positives *)
  check_violated o "4B.PA";
  Alcotest.(check bool) "only false positives" true
    ((report o 4).Rtmon.Report.false_positives > 0 && (report o 4).Rtmon.Report.hits = 0)

let test_scenario_10 () =
  let o = outcome 10 in
  (* The flagship pure-emergence case (Fig. 5.15): the vehicle accelerates
     from a stop, goal 4 violated with no subgoal correspondence. *)
  Alcotest.(check bool) "collision" true o.Scenarios.Runner.collided;
  check_violated o "4";
  check_clean o "4A";
  check_clean o "4B.ACC";
  Alcotest.(check bool) "goal 4 pure false negative" true
    ((report o 4).Rtmon.Report.false_negatives > 0 && (report o 4).Rtmon.Report.hits = 0);
  (* ACC indeed never became active *)
  Alcotest.(check bool) "ACC never active" true
    (Tl.Trace.fold
       (fun acc s -> acc && not (Tl.State.bool s (Vehicle.Signals.active "ACC")))
       true o.Scenarios.Runner.trace)

(* ------------------------------------------------------------------ *)

let test_cross_scenario_estimate () =
  let outcomes = List.map outcome (List.init 10 (fun i -> i + 1)) in
  let est = Scenarios.Runner.estimate outcomes in
  (* The thesis's conclusion: the subgoals only partially compose the
     system goals — both demons and restriction are witnessed at run time. *)
  Alcotest.(check bool) "false negatives across scenarios" true
    (Compose.Runtime.demon_evidence est);
  Alcotest.(check bool) "false positives across scenarios" true
    (Compose.Runtime.restriction_evidence est);
  Alcotest.(check bool) "partial but useful coverage" true
    (Compose.Runtime.coverage est > 0.2 && Compose.Runtime.coverage est < 1.0)

let test_repaired_no_collisions () =
  let outcomes =
    List.map
      (fun s -> Scenarios.Runner.run ~defects:Vehicle.Defects.repaired s)
      Scenarios.Defs.all
  in
  List.iter
    (fun (o : Scenarios.Runner.outcome) ->
      Alcotest.(check bool)
        (Fmt.str "scenario %d repaired: no collision" o.Scenarios.Runner.scenario.Scenarios.Defs.number)
        false o.Scenarios.Runner.collided)
    outcomes;
  (* scenarios 8 and 10 become completely violation-free *)
  List.iter
    (fun n ->
      let o = List.nth outcomes (n - 1) in
      Alcotest.(check (list string)) (Fmt.str "scenario %d clean" n) []
        (violated_ids o))
    [ 8; 10 ]

let test_figures_extract () =
  List.iter
    (fun (fig : Scenarios.Figures.t) ->
      let o = outcome fig.Scenarios.Figures.scenario in
      let rendered = Fmt.str "%a" (fun ppf () -> Scenarios.Figures.render ppf fig o) () in
      Alcotest.(check bool) (fig.Scenarios.Figures.id ^ " renders") true
        (String.length rendered > 100))
    Scenarios.Figures.all

let test_figure_5_13_events () =
  let fig = Scenarios.Figures.get "fig_5_13" in
  let o = outcome 8 in
  let events = fig.Scenarios.Figures.events o in
  (* ACC becomes active just after 2.0 s and selected just after 2.05 s. *)
  let time_of needle =
    List.find_map (fun (t, e) -> if e = needle then Some t else None) events
  in
  (match time_of "acc_active -> true" with
  | Some t -> Alcotest.(check bool) "active ~2.001" true (t > 1.999 && t < 2.01)
  | None -> Alcotest.fail "no activation event");
  (* the 'selected' indicator may flicker during the engage pulse (the
     dual-selected defect); some selected-edge must land in [2.0, 2.1] *)
  let selected_edges =
    List.filter_map
      (fun (t, e) -> if e = "acc_selected -> true" then Some t else None)
      events
  in
  Alcotest.(check bool) "a selection edge in [2.0, 2.1]" true
    (List.exists (fun t -> t >= 2.0 && t <= 2.1) selected_edges)

(* ------------------------------------------------------------------ *)
(* Critical-assumption monitoring (Appendix C relationships, §4.3)      *)

let assumption_counts defects =
  let per_scenario =
    List.map
      (fun (s : Scenarios.Defs.t) ->
        let o = Scenarios.Runner.run ~defects s in
        Vehicle.Relationships.check o.Scenarios.Runner.trace)
      Scenarios.Defs.all
  in
  List.map
    (fun (r : Vehicle.Relationships.t) ->
      let total =
        List.fold_left
          (fun acc checks ->
            let _, ivs =
              List.find
                (fun ((r' : Vehicle.Relationships.t), _) ->
                  r'.Vehicle.Relationships.number = r.Vehicle.Relationships.number)
                checks
            in
            acc + List.length ivs)
          0 per_scenario
      in
      (r, total))
    Vehicle.Relationships.all

let test_assumptions_localize_defects () =
  let defect_counts = assumption_counts Vehicle.Defects.as_evaluated in
  (* every assumption with documented breakers is violated somewhere *)
  List.iter
    (fun ((r : Vehicle.Relationships.t), total) ->
      if r.Vehicle.Relationships.broken_by <> [] then
        Alcotest.(check bool)
          (Fmt.str "R%d (%s) violated by its breakers" r.Vehicle.Relationships.number
             r.Vehicle.Relationships.name)
          true (total > 0)
      else
        Alcotest.(check int)
          (Fmt.str "R%d (%s) holds (no breakers seeded)" r.Vehicle.Relationships.number
             r.Vehicle.Relationships.name)
          0 total)
    defect_counts

let test_assumptions_hold_repaired () =
  let repaired_counts = assumption_counts Vehicle.Defects.repaired in
  List.iter
    (fun ((r : Vehicle.Relationships.t), total) ->
      Alcotest.(check bool)
        (Fmt.str "R%d near-clean when repaired" r.Vehicle.Relationships.number)
        true (total <= 1))
    repaired_counts


(* ------------------------------------------------------------------ *)
(* Ablation sweeps (design-choice attribution)                          *)

let goal_count (p : Scenarios.Sweeps.point) id =
  Option.value (List.assoc_opt id p.Scenarios.Sweeps.goal_violations) ~default:0

let test_latch_ablation () =
  let s = Scenarios.Sweeps.latch_sweep () in
  let at param =
    List.find (fun (p : Scenarios.Sweeps.point) -> p.Scenarios.Sweeps.parameter = param)
      s.Scenarios.Sweeps.points
  in
  (* no latch: transients attributed to the driver, no vehicle goal fires *)
  Alcotest.(check int) "latch 0: no goal-1 violations" 0 (goal_count (at 0.0) "1");
  Alcotest.(check int) "latch 0: no false negatives" 0
    (at 0.0).Scenarios.Sweeps.false_negatives;
  (* the evaluated latch produces the thesis's goal-1 false negatives *)
  Alcotest.(check bool) "latch 0.15: goal 1 fires" true (goal_count (at 0.15) "1" > 0);
  Alcotest.(check bool) "latch 0.15: false negatives" true
    ((at 0.15).Scenarios.Sweeps.false_negatives > 0)

let test_damping_ablation () =
  let s = Scenarios.Sweeps.damping_sweep () in
  let at param =
    List.find (fun (p : Scenarios.Sweeps.point) -> p.Scenarios.Sweeps.parameter = param)
      s.Scenarios.Sweeps.points
  in
  Alcotest.(check bool) "underdamped: goal 1 fires" true (goal_count (at 0.3) "1" > 0);
  Alcotest.(check int) "well damped: goal 1 silent" 0 (goal_count (at 0.8) "1");
  Alcotest.(check bool) "jerk violations persist when damped" true
    (goal_count (at 0.8) "2" > 0)

let test_window_ablation () =
  let s = Scenarios.Sweeps.window_sweep () in
  let fns =
    List.map (fun (p : Scenarios.Sweeps.point) -> p.Scenarios.Sweeps.false_negatives)
      s.Scenarios.Sweeps.points
  in
  (* widening the window can only convert false negatives into hits *)
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "FN non-increasing in window" true (non_increasing fns)

(* ------------------------------------------------------------------ *)
(* Shared-trace store (one simulation, many evaluations)                *)

let store_counter name = Obs.Metrics.value (Obs.Metrics.counter name)

let test_trace_store_bit_for_bit () =
  (* Every cell of the pinned seed-42 smoke grid, evaluated through the
     shared-trace store, must be bit-for-bit identical to a fresh
     per-cell re-simulation that bypasses every cache; and a second
     window against the same cell must reuse the stored trace (same
     physical array) rather than re-simulating. *)
  Scenarios.Runner.clear_cache ();
  let g = Scenarios.Campaign.smoke () in
  let hits0 = store_counter "trace_store.hits" in
  let misses0 = store_counter "trace_store.misses" in
  let cells = ref 0 in
  List.iter
    (fun fault ->
      List.iter
        (fun s ->
          incr cells;
          let inject = Inject.Plan.make ~seed:g.Scenarios.Campaign.seed [ fault ] in
          let cached = Scenarios.Runner.run ~use_cache:true ~inject s in
          let fresh = Scenarios.Runner.run ~use_cache:false ~inject s in
          let fingerprint (o : Scenarios.Runner.outcome) =
            Exec.Memo.digest
              ( o.Scenarios.Runner.trace,
                o.Scenarios.Runner.results,
                o.Scenarios.Runner.reports,
                o.Scenarios.Runner.collided,
                o.Scenarios.Runner.end_time )
          in
          Alcotest.(check string)
            (Fmt.str "scenario %d / %a: stored = re-simulated, bit-for-bit"
               s.Scenarios.Defs.number Inject.Fault.pp fault)
            (fingerprint fresh) (fingerprint cached);
          let swept =
            Scenarios.Runner.run ~use_cache:true ~inject ~window:0.1 s
          in
          Alcotest.(check bool) "window sweep reuses the stored trace" true
            (swept.Scenarios.Runner.trace == cached.Scenarios.Runner.trace))
        g.Scenarios.Campaign.grid_scenarios)
    g.Scenarios.Campaign.faults;
  Alcotest.(check int) "one simulation per grid cell" !cells
    (store_counter "trace_store.misses" - misses0);
  Alcotest.(check int) "one store hit per window sweep" !cells
    (store_counter "trace_store.hits" - hits0)

let () =
  Alcotest.run "scenarios"
    [
      ( "per-scenario",
        [
          Alcotest.test_case "scenario 1 (D.1)" `Slow test_scenario_1;
          Alcotest.test_case "scenario 2 (D.2)" `Slow test_scenario_2;
          Alcotest.test_case "scenario 3 (D.3)" `Slow test_scenario_3;
          Alcotest.test_case "scenario 4 (D.4)" `Slow test_scenario_4;
          Alcotest.test_case "scenario 5 (D.5)" `Slow test_scenario_5;
          Alcotest.test_case "scenario 6 (D.6/D.7)" `Slow test_scenario_6;
          Alcotest.test_case "scenario 7 (D.8)" `Slow test_scenario_7;
          Alcotest.test_case "scenario 8 (D.9)" `Slow test_scenario_8;
          Alcotest.test_case "scenario 9 (D.10)" `Slow test_scenario_9;
          Alcotest.test_case "scenario 10 (D.11)" `Slow test_scenario_10;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "composability estimate" `Slow test_cross_scenario_estimate;
          Alcotest.test_case "repaired: no collisions" `Slow test_repaired_no_collisions;
          Alcotest.test_case "figures extract" `Slow test_figures_extract;
          Alcotest.test_case "figure 5.13 events" `Slow test_figure_5_13_events;
        ] );
      ( "assumptions",
        [
          Alcotest.test_case "defects localize to their assumptions" `Slow
            test_assumptions_localize_defects;
          Alcotest.test_case "assumptions hold when repaired" `Slow
            test_assumptions_hold_repaired;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "attribution latch" `Slow test_latch_ablation;
          Alcotest.test_case "plant damping" `Slow test_damping_ablation;
          Alcotest.test_case "classification window" `Slow test_window_ablation;
        ] );
      ( "trace-store",
        [
          Alcotest.test_case "stored = re-simulated bit-for-bit" `Slow
            test_trace_store_bit_for_bit;
        ] );
    ]
