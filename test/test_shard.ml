(** Multi-process sharded execution: frame codec integrity, submission
    order, crash recovery (SIGKILL, torn and corrupt frames), and the
    sharded-equals-single-process determinism contract on the pinned
    seed-42 smoke campaign. *)

(* Workers are re-executions of this very binary: the intercept must run
   before anything else (in particular before Alcotest takes over), or a
   "worker" would start running the test suite instead. *)
let () = Exec.Shard.init ()

let counter name = Obs.Metrics.value (Obs.Metrics.counter name)

let get_done (r : _ Exec.Supervise.report) =
  match r.Exec.Supervise.status with
  | Exec.Supervise.Done v -> v
  | Exec.Supervise.Quarantined e ->
      Alcotest.failf "unexpected quarantine: %s" (Printexc.to_string e.Exec.Pool.exn)

(* ------------------------------------------------------------------ *)
(* Frame codec                                                          *)

let feed_string buf s =
  Exec.Shard.Frame.feed buf (Bytes.of_string s) (String.length s)

let test_frame_roundtrip () =
  let buf = Exec.Shard.Frame.create () in
  let frame = Exec.Shard.Frame.encode (42, "payload") in
  feed_string buf frame;
  (match Exec.Shard.Frame.decode buf with
  | `Frame v ->
      Alcotest.(check (pair int string)) "value survives" (42, "payload") v
  | `Need_more | `Corrupt -> Alcotest.fail "expected a complete frame");
  (match Exec.Shard.Frame.decode buf with
  | `Need_more -> ()
  | `Frame _ | `Corrupt -> Alcotest.fail "buffer must be empty after decode")

let test_frame_streaming () =
  (* Two frames fed byte-by-byte: every prefix is `Need_more, and both
     frames come out intact and in order. *)
  let buf = Exec.Shard.Frame.create () in
  let frames = Exec.Shard.Frame.encode "first" ^ Exec.Shard.Frame.encode "second" in
  let decoded = ref [] in
  String.iter
    (fun c ->
      feed_string buf (String.make 1 c);
      match Exec.Shard.Frame.decode buf with
      | `Frame v -> decoded := (v : string) :: !decoded
      | `Need_more -> ()
      | `Corrupt -> Alcotest.fail "no prefix of a valid stream is corrupt")
    frames;
  Alcotest.(check (list string)) "both frames decoded, in order"
    [ "first"; "second" ] (List.rev !decoded)

let test_frame_torn_tail () =
  (* A frame cut anywhere short of its full length never decodes — it
     stays `Need_more until more bytes arrive (or EOF declares it torn). *)
  let frame = Exec.Shard.Frame.encode [ 1.5; 2.5 ] in
  for cut = 0 to String.length frame - 1 do
    let buf = Exec.Shard.Frame.create () in
    feed_string buf (String.sub frame 0 cut);
    match Exec.Shard.Frame.decode buf with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.failf "decoded from %d of %d bytes" cut (String.length frame)
    | `Corrupt -> Alcotest.failf "torn at %d must read as short, not corrupt" cut
  done

let test_frame_corruption () =
  let check_corrupt what s =
    let buf = Exec.Shard.Frame.create () in
    feed_string buf s;
    match Exec.Shard.Frame.decode buf with
    | `Corrupt -> ()
    | `Frame _ -> Alcotest.failf "%s accepted" what
    | `Need_more -> Alcotest.failf "%s read as short" what
  in
  let frame = Exec.Shard.Frame.encode "precious" in
  (* Payload bit-flip under an unchanged CRC field. *)
  let flipped = Bytes.of_string frame in
  Bytes.set flipped 12 (Char.chr (Char.code (Bytes.get flipped 12) lxor 1));
  check_corrupt "bit-flipped payload" (Bytes.to_string flipped);
  (* Wrong magic. *)
  let bad_magic = Bytes.of_string frame in
  Bytes.set bad_magic 0 'X';
  check_corrupt "bad magic" (Bytes.to_string bad_magic);
  (* Absurd length claim (bit-flip in the length field). *)
  let bad_len = Bytes.of_string frame in
  Bytes.set_int32_le bad_len 4 0x7FFFFFFFl;
  check_corrupt "absurd length" (Bytes.to_string bad_len)

let test_frame_batch_roundtrip () =
  (* An assignment batch — (job, seq, per-cell marshalled payloads) —
     survives the codec with every member payload intact. *)
  let tasks = Array.init 5 (fun i -> (i, Marshal.to_string (i * i) [])) in
  let buf = Exec.Shard.Frame.create () in
  feed_string buf (Exec.Shard.Frame.encode (7, 2, tasks));
  match Exec.Shard.Frame.decode buf with
  | `Frame ((job : int), (seq : int), (tasks' : (int * string) array)) ->
      Alcotest.(check int) "job survives" 7 job;
      Alcotest.(check int) "seq survives" 2 seq;
      Alcotest.(check int) "all members survive" 5 (Array.length tasks');
      Array.iteri
        (fun i (idx, payload) ->
          Alcotest.(check int) "member index" i idx;
          Alcotest.(check int) "member payload"
            (i * i)
            (Marshal.from_string payload 0))
        tasks'
  | `Need_more | `Corrupt -> Alcotest.fail "expected a complete batch frame"

(* ------------------------------------------------------------------ *)
(* Basic sharded execution                                              *)

let test_try_map_order () =
  let xs = List.init 25 Fun.id in
  let reports = Exec.Shard.try_map ~shards:3 ~domains:2 (fun x -> x * x) xs in
  Alcotest.(check (list int))
    "results in submission order across 3 workers"
    (List.map (fun x -> x * x) xs)
    (List.map get_done reports);
  List.iter
    (fun (r : _ Exec.Supervise.report) ->
      Alcotest.(check int) "one dispatch each" 1 r.Exec.Supervise.attempts)
    reports

let test_on_result_hook () =
  let seen = ref [] in
  let reports =
    Exec.Shard.try_map ~shards:2
      ~on_result:(fun i v -> seen := (i, v) :: !seen)
      (fun x -> x + 100) [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "reports" [ 101; 102; 103; 104 ]
    (List.map get_done reports);
  Alcotest.(check (list (pair int int)))
    "hook saw every (index, value) exactly once"
    [ (0, 101); (1, 102); (2, 103); (3, 104) ]
    (List.sort compare !seen)

let test_task_failure_quarantines () =
  (* A deterministic task failure crosses the process boundary as
     Worker_failure carrying the printed exception, and consumes policy
     attempts (zero-delay policy: no sleeps). *)
  let policy =
    Exec.Supervise.policy ~max_attempts:3 ~base_delay_s:0. ~jitter:0. ()
  in
  let reports =
    Exec.Shard.try_map ~shards:2 ~policy
      (fun x -> if x = 2 then failwith "poisoned cell" else x * 10)
      [ 1; 2; 3 ]
  in
  match reports with
  | [ a; b; c ] ->
      Alcotest.(check int) "healthy neighbours keep results" 10 (get_done a);
      Alcotest.(check int) "healthy neighbours keep results" 30 (get_done c);
      (match b.Exec.Supervise.status with
      | Exec.Supervise.Quarantined e -> (
          match e.Exec.Pool.exn with
          | Exec.Shard.Worker_failure { printed; _ } ->
              Alcotest.(check bool) "printed exception preserved" true
                (String.length printed > 0
                && String.length (Str.global_replace (Str.regexp_string "poisoned cell") "" printed)
                   < String.length printed)
          | _ -> Alcotest.fail "expected Worker_failure")
      | Exec.Supervise.Done _ -> Alcotest.fail "poisoned cell must quarantine");
      Alcotest.(check int) "policy attempts consumed" 3 b.Exec.Supervise.attempts
  | _ -> Alcotest.fail "unexpected batch shape"

let test_batched_execution () =
  (* 12 tasks in explicit batches of 3: results stay in submission order
     and the batch-size histogram records exactly the 4 assignment
     frames. *)
  let h = Obs.Metrics.histogram "shard.batch_size" in
  let count0 = (Obs.Metrics.summary h).Obs.Metrics.count in
  let xs = List.init 12 Fun.id in
  let reports = Exec.Shard.try_map ~shards:2 ~batch:3 (fun x -> x * 3) xs in
  Alcotest.(check (list int)) "results in submission order"
    (List.map (fun x -> x * 3) xs)
    (List.map get_done reports);
  Alcotest.(check int) "4 assignment frames of 3 cells" 4
    ((Obs.Metrics.summary h).Obs.Metrics.count - count0)

(* Every live shard worker spawned by this process (marker in argv,
   parent = us), by scanning /proc. ppid is the field after the
   parenthesised comm in /proc/<pid>/stat; comm can contain anything, so
   parse after the last ')'. *)
let find_workers () =
  let self = Unix.getpid () in
  let read_file f =
    try Some (In_channel.with_open_bin f In_channel.input_all)
    with Sys_error _ -> None
  in
  Sys.readdir "/proc" |> Array.to_list
  |> List.filter_map int_of_string_opt
  |> List.filter (fun pid ->
         match
           ( read_file (Printf.sprintf "/proc/%d/stat" pid),
             read_file (Printf.sprintf "/proc/%d/cmdline" pid) )
         with
         | Some stat, Some cmdline -> (
             match String.rindex_opt stat ')' with
             | Some i -> (
                 match
                   String.split_on_char ' '
                     (String.sub stat (i + 2) (String.length stat - i - 2))
                 with
                 | _state :: ppid :: _ ->
                     ppid = string_of_int self
                     && Str.string_match
                          (Str.regexp ".*exec-shard-worker.*")
                          (String.map (fun c -> if c = '\000' then ' ' else c) cmdline)
                          0
                 | _ -> false)
             | None -> false)
         | _ -> false)

let test_fleet_persists_across_jobs () =
  (* The fleet is resident: two consecutive jobs on the same (shards,
     domains) shape must be served by the same worker processes, with no
     spawns in between. *)
  let xs = List.init 8 Fun.id in
  let r1 = Exec.Shard.try_map ~shards:2 (fun x -> x * 2) xs in
  let pids1 = List.sort compare (find_workers ()) in
  let respawns0 = counter "shard.respawns" in
  let r2 = Exec.Shard.try_map ~shards:2 (fun x -> x * 11) xs in
  let pids2 = List.sort compare (find_workers ()) in
  Alcotest.(check (list int)) "first job correct"
    (List.map (fun x -> x * 2) xs)
    (List.map get_done r1);
  Alcotest.(check (list int)) "second job correct"
    (List.map (fun x -> x * 11) xs)
    (List.map get_done r2);
  Alcotest.(check bool) "workers are resident between jobs" true (pids1 <> []);
  Alcotest.(check (list int)) "same processes served both jobs" pids1 pids2;
  Alcotest.(check int) "no respawns between jobs" 0
    (counter "shard.respawns" - respawns0)

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                       *)

let test_torn_frame_recovery () =
  (* The worker handling the 2nd assignment writes half a result frame
     and dies. The coordinator must drop the torn frame, respawn, requeue
     and settle every task with the right value. *)
  let dropped0 = counter "shard.frames_dropped" in
  let respawns0 = counter "shard.respawns" in
  let xs = List.init 12 Fun.id in
  let reports =
    Exec.Shard.try_map ~shards:2
      ~havoc:(fun ~slot:_ ~seq ->
        if seq = 2 then Some Exec.Shard.Torn_frame else None)
      (fun x -> x * 7) xs
  in
  Alcotest.(check (list int)) "all tasks settle correctly"
    (List.map (fun x -> x * 7) xs)
    (List.map get_done reports);
  Alcotest.(check bool) "torn frame counted as dropped" true
    (counter "shard.frames_dropped" > dropped0);
  Alcotest.(check bool) "worker respawned" true
    (counter "shard.respawns" > respawns0)

let test_corrupt_frame_recovery () =
  (* A bit-flipped result frame fails its CRC: the stream is condemned,
     the worker killed and respawned, and the task recomputed — never
     settled from the corrupt payload. *)
  let dropped0 = counter "shard.frames_dropped" in
  let respawns0 = counter "shard.respawns" in
  let xs = List.init 12 Fun.id in
  let reports =
    Exec.Shard.try_map ~shards:2
      ~havoc:(fun ~slot:_ ~seq ->
        if seq = 2 then Some Exec.Shard.Corrupt_frame else None)
      (fun x -> x + 1000) xs
  in
  Alcotest.(check (list int)) "all tasks settle correctly"
    (List.map (fun x -> x + 1000) xs)
    (List.map get_done reports);
  Alcotest.(check bool) "corrupt frame dropped" true
    (counter "shard.frames_dropped" > dropped0);
  Alcotest.(check bool) "worker respawned" true
    (counter "shard.respawns" > respawns0)

let test_torn_batch_requeues_members_once () =
  (* A worker dying mid-batch loses the whole assignment: every member
     cell of the torn batch — and nothing else — is requeued, exactly
     once, and settles with the right value after the respawn. *)
  let requeued0 = counter "shard.cells_requeued" in
  let xs = List.init 12 Fun.id in
  let reports =
    Exec.Shard.try_map ~shards:2 ~batch:4
      ~havoc:(fun ~slot:_ ~seq ->
        if seq = 2 then Some Exec.Shard.Torn_frame else None)
      (fun x -> x + 5) xs
  in
  Alcotest.(check (list int)) "all tasks settle correctly"
    (List.map (fun x -> x + 5) xs)
    (List.map get_done reports);
  Alcotest.(check int) "the 4 members of the torn batch requeued once" 4
    (counter "shard.cells_requeued" - requeued0)

let test_restart_budget_exhaustion () =
  (* Every assignment tears: with a finite restart budget the run must
     still terminate, quarantining unsettled tasks as Worker_crashed
     rather than hanging or crashing the coordinator. *)
  let reports =
    Exec.Shard.try_map ~shards:1 ~restarts:1
      ~havoc:(fun ~slot:_ ~seq:_ -> Some Exec.Shard.Torn_frame)
      (fun x -> x) [ 1; 2; 3 ]
  in
  Alcotest.(check int) "every task reported" 3 (List.length reports);
  List.iter
    (fun (r : _ Exec.Supervise.report) ->
      match r.Exec.Supervise.status with
      | Exec.Supervise.Quarantined e -> (
          match e.Exec.Pool.exn with
          | Exec.Shard.Worker_crashed _ -> ()
          | exn ->
              Alcotest.failf "expected Worker_crashed, got %s"
                (Printexc.to_string exn))
      | Exec.Supervise.Done _ ->
          Alcotest.fail "no task can settle when every frame tears")
    reports

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_no_fd_leak_on_death_paths () =
  (* Every coordinator death path must close its end of the worker's
     socket and reap the child. Starting from an empty fleet, a run that
     kills its worker repeatedly (budget exhaustion) followed by a fleet
     shutdown must restore the exact fd census, with no child left to
     wait on. *)
  Exec.Shard.shutdown_fleets ();
  let fds0 = count_fds () in
  ignore
    (Exec.Shard.try_map ~shards:2 ~restarts:1
       ~havoc:(fun ~slot:_ ~seq:_ -> Some Exec.Shard.Torn_frame)
       (fun x -> x) [ 1; 2; 3; 4 ]);
  Exec.Shard.shutdown_fleets ();
  Alcotest.(check int) "fd census unchanged" fds0 (count_fds ());
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "an unreaped live child remains"
  | pid, _ -> Alcotest.failf "unreaped zombie %d collected by the test" pid

(* ------------------------------------------------------------------ *)
(* Liveness: heartbeats, hang detection, graceful degradation           *)

let test_hang_detected_and_requeued () =
  (* The worker serving the 2nd assignment wedges with its pipe open —
     the hang that EOF-based death detection can never see. The liveness
     sweep must notice the silence within [hang_timeout_s], SIGKILL the
     worker, requeue exactly the hung batch's cells under the restart
     budget, and settle everything correctly. *)
  let hangs0 = counter "shard.hangs_detected" in
  let requeued0 = counter "shard.cells_requeued" in
  let respawns0 = counter "shard.respawns" in
  let xs = List.init 8 Fun.id in
  let t0 = Unix.gettimeofday () in
  let reports =
    Exec.Shard.try_map ~shards:2 ~batch:2 ~hang_timeout_s:1.0
      ~havoc:(fun ~slot:_ ~seq ->
        if seq = 2 then Some Exec.Shard.Hang else None)
      (fun x -> x * 9) xs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check (list int)) "all tasks settle correctly"
    (List.map (fun x -> x * 9) xs)
    (List.map get_done reports);
  Alcotest.(check bool) "hang detected" true
    (counter "shard.hangs_detected" > hangs0);
  Alcotest.(check int) "the hung batch's 2 cells requeued" 2
    (counter "shard.cells_requeued" - requeued0);
  Alcotest.(check bool) "hung worker replaced under the restart budget" true
    (counter "shard.respawns" > respawns0);
  (* Detection is deadline-driven, not luck: a 1 s timeout must resolve
     the whole job well inside this generous bound. *)
  Alcotest.(check bool) "recovered promptly" true (elapsed < 20.)

let test_sigstopped_worker_recovered () =
  (* SIGSTOP freezes the worker wholesale — heartbeat domain included —
     without closing its pipe: from the coordinator's seat this is
     exactly the open-pipe hang. The stopped worker must be declared
     hung, SIGKILLed (SIGKILL penetrates a stopped process), and its
     cells requeued. The stopper runs on its own domain, polling /proc
     until a worker exists. *)
  Exec.Shard.shutdown_fleets ();
  let hangs0 = counter "shard.hangs_detected" in
  let stopped = Atomic.make 0 in
  let stopper =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 60. in
        let rec hunt () =
          if Unix.gettimeofday () < deadline && Atomic.get stopped = 0 then (
            (match find_workers () with
            | pid :: _ -> (
                try
                  Unix.kill pid Sys.sigstop;
                  Atomic.set stopped pid
                with Unix.Unix_error _ -> ())
            | [] -> ());
            if Atomic.get stopped = 0 then (
              Unix.sleepf 0.005;
              hunt ()))
        in
        hunt ())
  in
  let xs = List.init 10 Fun.id in
  let t0 = Unix.gettimeofday () in
  let reports =
    Exec.Shard.try_map ~shards:1 ~batch:2 ~hang_timeout_s:1.0
      (fun x ->
        Unix.sleepf 0.15;
        x * 3)
      xs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Domain.join stopper;
  Alcotest.(check bool) "the stopper found and froze a worker" true
    (Atomic.get stopped > 0);
  Alcotest.(check (list int)) "all tasks settle correctly"
    (List.map (fun x -> x * 3) xs)
    (List.map get_done reports);
  Alcotest.(check bool) "frozen worker detected as hung" true
    (counter "shard.hangs_detected" > hangs0);
  Alcotest.(check bool) "recovered within the liveness deadline (+ slack)"
    true (elapsed < 30.)

let test_busy_loop_caught_by_deadline () =
  (* A task stuck in an OCaml busy-loop keeps the worker's heartbeat
     domain beating, so the silence sweep never fires; only the explicit
     per-batch deadline can catch it. First dispatch spins (flag file
     absent); the requeued dispatch sees the flag and returns. *)
  let flag = Filename.temp_file "shard_busy" ".flag" in
  Sys.remove flag;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists flag then Sys.remove flag)
  @@ fun () ->
  let hangs0 = counter "shard.hangs_detected" in
  let task x =
    if x = 2 && not (Sys.file_exists flag) then begin
      Out_channel.with_open_bin flag (fun oc ->
          Out_channel.output_string oc "spinning");
      (* Bounded spin: if deadline detection ever regresses this poisons
         the result instead of hanging the suite. *)
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 30. do
        ignore (Sys.opaque_identity 0)
      done;
      -1
    end
    else x * 4
  in
  let reports =
    Exec.Shard.try_map ~shards:1 ~batch:1 ~deadline_s:1.0 task [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "spinner killed, requeued and settled"
    [ 0; 4; 8; 12 ]
    (List.map get_done reports);
  Alcotest.(check bool) "busy-loop caught by the batch deadline" true
    (counter "shard.hangs_detected" > hangs0)

let test_slow_worker_not_killed () =
  (* Slow-but-healthy: the worker delays its results past the hang
     timeout while heartbeating throughout. Liveness must keep its hands
     off — no kill, no respawn, no hang counted. *)
  let hangs0 = counter "shard.hangs_detected" in
  let beats0 = counter "shard.heartbeats" in
  let respawns0 = counter "shard.respawns" in
  let reports =
    Exec.Shard.try_map ~shards:1 ~hang_timeout_s:0.6
      ~havoc:(fun ~slot:_ ~seq ->
        if seq = 1 then Some (Exec.Shard.Slow 1.2) else None)
      (fun x -> x * 6) [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "all tasks settle correctly" [ 6; 12; 18; 24 ]
    (List.map get_done reports);
  Alcotest.(check int) "no hang detected" 0
    (counter "shard.hangs_detected" - hangs0);
  Alcotest.(check int) "no respawn" 0 (counter "shard.respawns" - respawns0);
  Alcotest.(check bool) "heartbeats kept the worker alive" true
    (counter "shard.heartbeats" > beats0)

let test_total_spawn_failure_falls_back () =
  (* Every spawn fails, so the job starts with zero live workers: the
     run must fall back to the in-process supervised pool — same
     results, same hooks — instead of dying or hanging. *)
  Exec.Shard.shutdown_fleets ();
  let fallbacks0 = counter "shard.fallbacks" in
  let spawn_failures0 = counter "shard.spawn_failures" in
  let seen = ref [] in
  let reports =
    Exec.Shard.try_map ~shards:2
      ~spawn_fault:(fun ~attempt:_ -> true)
      ~on_result:(fun i v -> seen := (i, v) :: !seen)
      (fun x -> x + 7) [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "fallback results correct" [ 8; 9; 10 ]
    (List.map get_done reports);
  Alcotest.(check int) "fallback counted once" 1
    (counter "shard.fallbacks" - fallbacks0);
  Alcotest.(check bool) "spawn failures counted" true
    (counter "shard.spawn_failures" - spawn_failures0 >= 2);
  Alcotest.(check (list (pair int int))) "on_result fired in-process"
    [ (0, 8); (1, 9); (2, 10) ]
    (List.sort compare !seen);
  Exec.Shard.shutdown_fleets ()

let test_partial_spawn_failure_stays_sharded () =
  (* One slot's spawn fails, the other's succeeds: the job must run
     sharded on the degraded fleet — no fallback — and still settle
     every cell. *)
  Exec.Shard.shutdown_fleets ();
  let fallbacks0 = counter "shard.fallbacks" in
  let spawn_failures0 = counter "shard.spawn_failures" in
  let xs = List.init 10 Fun.id in
  let reports =
    Exec.Shard.try_map ~shards:2
      ~spawn_fault:(fun ~attempt -> attempt = 1)
      (fun x -> x * 13) xs
  in
  Alcotest.(check (list int)) "degraded fleet settles everything"
    (List.map (fun x -> x * 13) xs)
    (List.map get_done reports);
  Alcotest.(check int) "no fallback: one worker survived" 0
    (counter "shard.fallbacks" - fallbacks0);
  Alcotest.(check int) "the failed spawn counted" 1
    (counter "shard.spawn_failures" - spawn_failures0);
  Exec.Shard.shutdown_fleets ()

(* ------------------------------------------------------------------ *)
(* Sharded campaigns: the determinism contract                          *)

(* The single-process reference for the pinned seed-42 smoke matrix,
   computed once (the outcome cache makes later comparisons free). *)
let reference =
  lazy (Scenarios.Campaign.run ~domains:1 (Scenarios.Campaign.smoke ()))

let check_matches_reference what (c : Scenarios.Campaign.t) =
  let r = Lazy.force reference in
  Alcotest.(check bool)
    (what ^ ": cells bit-for-bit identical") true
    (c.Scenarios.Campaign.cells = r.Scenarios.Campaign.cells);
  Alcotest.(check string)
    (what ^ ": CSV byte-identical")
    (Scenarios.Export.campaign_csv r)
    (Scenarios.Export.campaign_csv c);
  (* The pinned coverage counts of the seed-42 smoke grid (EXPERIMENTS.md). *)
  Alcotest.(check (list int))
    (what ^ ": pinned detection counts")
    [ 3; 4; 1; 4 ]
    [
      c.Scenarios.Campaign.detected;
      c.Scenarios.Campaign.missed;
      c.Scenarios.Campaign.spurious;
      c.Scenarios.Campaign.no_effect;
    ];
  Alcotest.(check (list int))
    (what ^ ": pinned classification counts")
    [ 70; 22; 63; 3 ]
    [
      c.Scenarios.Campaign.hits;
      c.Scenarios.Campaign.false_negatives;
      c.Scenarios.Campaign.false_positives;
      c.Scenarios.Campaign.inhibited;
    ]

let test_sharded_matches_single_process () =
  ignore (Lazy.force reference);
  let executed0 = counter "campaign.cells_executed" in
  let c = Scenarios.Campaign.run ~shards:2 ~domains:1 (Scenarios.Campaign.smoke ()) in
  check_matches_reference "2 shards" c;
  Alcotest.(check int) "coordinator counted all 12 cells" 12
    (counter "campaign.cells_executed" - executed0);
  Alcotest.(check int) "robustness: 12 executed" 12
    c.Scenarios.Campaign.robustness.Scenarios.Campaign.executed

let find_worker () =
  match find_workers () with [] -> None | pid :: _ -> Some pid

let test_sigkill_worker_mid_grid () =
  (* SIGKILL a real worker while the grid is running; the campaign must
     absorb the crash (respawn + requeue) and still produce the exact
     single-process matrix and CSV. The killer runs on its own domain,
     polling /proc until a worker exists. *)
  ignore (Lazy.force reference);
  let respawns0 = counter "shard.respawns" in
  let killed = Atomic.make 0 in
  let killer =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 60. in
        let rec hunt () =
          if Unix.gettimeofday () < deadline && Atomic.get killed = 0 then (
            (match find_worker () with
            | Some pid -> (
                try
                  Unix.kill pid Sys.sigkill;
                  Atomic.set killed pid
                with Unix.Unix_error _ -> ())
            | None -> ());
            if Atomic.get killed = 0 then (
              Unix.sleepf 0.01;
              hunt ()))
        in
        hunt ())
  in
  let c = Scenarios.Campaign.run ~shards:2 ~domains:1 (Scenarios.Campaign.smoke ()) in
  Domain.join killer;
  Alcotest.(check bool) "the killer found and killed a worker" true
    (Atomic.get killed > 0);
  Alcotest.(check bool) "shard.respawns >= 1" true
    (counter "shard.respawns" > respawns0);
  check_matches_reference "after worker SIGKILL" c

let test_campaign_under_chaos_plan () =
  (* The flagship chaos contract: a pinned-seed sharded campaign under a
     plan injecting a hang, a crash, a torn frame and a corrupt frame
     still produces the exact single-process matrix and CSV. With 2
     slots at the default restart budget the plan's 4 deaths can never
     exhaust both slots, so every cell settles. *)
  ignore (Lazy.force reference);
  let hangs0 = counter "shard.hangs_detected" in
  let chaos =
    match Exec.Chaos.parse ~seed:42 "hang@2,crash@4,torn@6,corrupt@8" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let c =
    Scenarios.Campaign.run ~shards:2 ~domains:1 ~batch:1 ~chaos
      ~hang_timeout_s:1.5 (Scenarios.Campaign.smoke ())
  in
  check_matches_reference "campaign under chaos" c;
  Alcotest.(check bool) "the injected hang was detected" true
    (counter "shard.hangs_detected" > hangs0)

let () =
  Alcotest.run "shard"
    [
      ( "frame",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "byte-at-a-time streaming" `Quick
            test_frame_streaming;
          Alcotest.test_case "torn tail reads as short" `Quick
            test_frame_torn_tail;
          Alcotest.test_case "corruption detected" `Quick test_frame_corruption;
          Alcotest.test_case "batched assignment round-trip" `Quick
            test_frame_batch_roundtrip;
        ] );
      ( "exec",
        [
          Alcotest.test_case "submission order across workers" `Quick
            test_try_map_order;
          Alcotest.test_case "on_result hook" `Quick test_on_result_hook;
          Alcotest.test_case "task failure quarantines" `Quick
            test_task_failure_quarantines;
          Alcotest.test_case "batched frames settle in order" `Quick
            test_batched_execution;
          Alcotest.test_case "fleet persists across jobs" `Quick
            test_fleet_persists_across_jobs;
        ] );
      ( "crash",
        [
          Alcotest.test_case "torn frame recovered" `Quick
            test_torn_frame_recovery;
          Alcotest.test_case "corrupt frame recovered" `Quick
            test_corrupt_frame_recovery;
          Alcotest.test_case "torn batch requeues its members once" `Quick
            test_torn_batch_requeues_members_once;
          Alcotest.test_case "restart budget exhaustion terminates" `Quick
            test_restart_budget_exhaustion;
          Alcotest.test_case "no fd leak across death paths" `Quick
            test_no_fd_leak_on_death_paths;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "open-pipe hang detected and requeued" `Quick
            test_hang_detected_and_requeued;
          Alcotest.test_case "SIGSTOPped worker recovered" `Quick
            test_sigstopped_worker_recovered;
          Alcotest.test_case "busy-loop caught by batch deadline" `Quick
            test_busy_loop_caught_by_deadline;
          Alcotest.test_case "slow-but-heartbeating worker spared" `Quick
            test_slow_worker_not_killed;
          Alcotest.test_case "total spawn failure falls back in-process"
            `Quick test_total_spawn_failure_falls_back;
          Alcotest.test_case "partial spawn failure stays sharded" `Quick
            test_partial_spawn_failure_stays_sharded;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "sharded = single-process bit-for-bit" `Slow
            test_sharded_matches_single_process;
          Alcotest.test_case "worker SIGKILL mid-grid absorbed" `Slow
            test_sigkill_worker_mid_grid;
          Alcotest.test_case "chaos plan: matrix bit-for-bit identical" `Slow
            test_campaign_under_chaos_plan;
        ] );
    ]
