(** One test per defect toggle of {!Vehicle.Defects.t}: each enables a
    single defect against the repaired baseline and asserts an empirical
    signature — a critical-relationship violation, a collision, or a
    behavioural delta on a scenario where that defect (and only that
    defect) manifests. Runs share the process-wide scenario outcome cache,
    so the repaired baselines are simulated once. *)

open Tl

let defs n = Scenarios.Defs.get n
let run ~defects n = Scenarios.Runner.run ~defects (defs n)
let repaired = Vehicle.Defects.repaired
let base n = run ~defects:repaired n

(** Violation-interval count for the named critical relationship. *)
let rel_count name trace =
  match
    List.find_opt
      (fun ((r : Vehicle.Relationships.t), _) -> r.name = name)
      (Vehicle.Relationships.check trace)
  with
  | Some (_, ivs) -> List.length ivs
  | None -> Alcotest.failf "unknown relationship %s" name

let count_states pred trace = Trace.fold (fun n s -> if pred s then n + 1 else n) 0 trace

let fold_signal f init var trace =
  Trace.fold (fun acc s -> f acc (State.float s var)) init trace

let min_signal = fold_signal Float.min infinity
let max_signal = fold_signal Float.max neg_infinity

(* ------------------------------------------------------------------ *)

let test_pa_ghost_requests () =
  let o = run ~defects:{ repaired with pa_ghost_requests = true } 1 in
  Alcotest.(check int) "repaired: R9 quiet" 0 (rel_count "InactiveFeaturesQuiet" (base 1).trace);
  Alcotest.(check bool) "ghost requests violate R9" true
    (rel_count "InactiveFeaturesQuiet" o.trace > 0)

let test_ca_no_hysteresis () =
  let o = run ~defects:{ repaired with ca_no_hysteresis = true } 1 in
  Alcotest.(check int) "repaired: R10 quiet" 0 (rel_count "BrakingContinuity" (base 1).trace);
  Alcotest.(check bool) "cancelled braking violates R10" true
    (rel_count "BrakingContinuity" o.trace > 0)

(** The radar's minimum range is 2 m; scenarios rarely close inside it, so
    probe the sensor directly: an object parked 1.5 m ahead. *)
let test_radar_min_range_dropout () =
  let detected defects =
    let trace =
      Vehicle.System.run ~defects ~duration:0.1
        ~objects:(Vehicle.Plant.stationary_ahead 1.5) ~events:[] ()
    in
    State.bool (Trace.get trace (Trace.length trace - 1)) Vehicle.Signals.object_detected
  in
  Alcotest.(check bool) "repaired radar sees 1.5 m" true (detected repaired);
  Alcotest.(check bool) "dropout loses objects inside min range" false
    (detected { repaired with radar_min_range_dropout = true })

let test_arbiter_steering_priority_reversed () =
  let o = run ~defects:{ repaired with arbiter_steering_priority_reversed = true } 2 in
  Alcotest.(check bool) "repaired S2 avoids collision" false (base 2).collided;
  Alcotest.(check bool) "reversed priority collides in S2" true o.collided

(** The latch holds the flag-derived attribution ([va_source]) past the
    actual source change, so it disagrees with [accel_source]. *)
let test_arbiter_selected_latch () =
  let disagreement trace =
    count_states
      (fun s ->
        State.sym s Vehicle.Signals.va_source
        <> State.sym s Vehicle.Signals.accel_source)
      trace
  in
  let o = run ~defects:{ repaired with arbiter_selected_latch = true } 4 in
  Alcotest.(check int) "repaired attributions agree" 0 (disagreement (base 4).trace);
  Alcotest.(check bool) "latch holds stale attribution" true (disagreement o.trace > 0)

(** Enabled-but-disengaged ACC regulates toward set speed 0: it emits
    braking requests it has no business computing. *)
let test_acc_controls_when_disengaged () =
  let min_req o = min_signal (Vehicle.Signals.accel_req "ACC") o.Scenarios.Runner.trace in
  Alcotest.(check bool) "repaired disengaged ACC is quiet" true (min_req (base 3) >= -0.001);
  Alcotest.(check bool) "defect brakes toward set speed 0" true
    (min_req (run ~defects:{ repaired with acc_controls_when_disengaged = true } 3) < -1.0)

let test_acc_no_gear_check () =
  let o = run ~defects:{ repaired with acc_no_gear_check = true } 8 in
  Alcotest.(check int) "repaired: R8 quiet" 0 (rel_count "DirectionDiscipline" (base 8).trace);
  Alcotest.(check bool) "ACC in reverse violates R8" true
    (rel_count "DirectionDiscipline" o.trace > 0)

(** Integrating through a driver override winds the integrator up; on
    regaining control ACC overshoots the set speed. *)
let test_acc_integrator_windup () =
  let top o = max_signal Vehicle.Signals.host_speed o.Scenarios.Runner.trace in
  let o = run ~defects:{ repaired with acc_integrator_windup = true } 4 in
  Alcotest.(check bool) "windup overshoots past repaired peak" true
    (top o > top (base 4) +. 0.2)

let test_acc_no_standstill_clamp () =
  let floor_ o = min_signal Vehicle.Signals.host_speed o.Scenarios.Runner.trace in
  let o = run ~defects:{ repaired with acc_no_standstill_clamp = true } 6 in
  Alcotest.(check bool) "repaired never reverses" true (floor_ (base 6) >= -0.01);
  Alcotest.(check bool) "unclamped gap control drives speed negative" true (floor_ o < -0.1);
  Alcotest.(check bool) "violates R7" true (rel_count "StandstillHold" o.trace > 0)

let test_lca_steering_ignored () =
  let o = run ~defects:{ repaired with lca_steering_ignored = true } 6 in
  Alcotest.(check int) "repaired: R6 quiet" 0 (rel_count "SteeringFollowsWinner" (base 6).trace);
  Alcotest.(check bool) "stale steering command violates R6" true
    (rel_count "SteeringFollowsWinner" o.trace > 0)

let test_rca_never_engages () =
  let o = run ~defects:{ repaired with rca_never_engages = true } 7 in
  Alcotest.(check bool) "repaired RCA brakes in reverse" false (base 7).collided;
  Alcotest.(check bool) "without RCA the backing collision happens" true o.collided

(** The mis-routed slot feeds PA a command unequal to its request, so the
    parking manoeuvre stalls: the vehicle never moves. *)
let test_pa_command_mismatch () =
  let top o = max_signal Vehicle.Signals.host_speed o.Scenarios.Runner.trace in
  let o = run ~defects:{ repaired with pa_command_mismatch = true } 9 in
  Alcotest.(check bool) "repaired PA moves the vehicle" true (top (base 9) > 0.1);
  Alcotest.(check bool) "mismatch stalls the manoeuvre" true (top o < 0.01);
  Alcotest.(check bool) "violates R2" true
    (rel_count "CommandEqualsSelectedRequest" o.trace > 0)

let test_powertrain_creep_on_engage () =
  let o = run ~defects:{ repaired with powertrain_creep_on_engage = true } 10 in
  Alcotest.(check bool) "repaired failed engage stays at standstill" true
    (max_signal Vehicle.Signals.host_speed (base 10).trace < 0.01);
  Alcotest.(check bool) "leaked creep torque rolls into the obstacle" true o.collided

let test_arbiter_dual_selected () =
  let dual trace =
    count_states
      (fun s ->
        List.length
          (List.filter (fun f -> State.bool s (Vehicle.Signals.selected f))
             Vehicle.Signals.features)
        >= 2)
      trace
  in
  let o = run ~defects:{ repaired with arbiter_dual_selected = true } 6 in
  Alcotest.(check int) "repaired: one selected flag at a time" 0 (dual (base 6).trace);
  Alcotest.(check bool) "defect flags two subsystems at once" true (dual o.trace > 0)

(** Pedal-blind selection lets a newly engaged feature hold acceleration
    while the throttle is applied — more subsystem-sourced states under
    throttle than the repaired arbiter allows. *)
let test_arbiter_selects_under_pedals () =
  let under_throttle trace =
    count_states
      (fun s ->
        State.float s Vehicle.Signals.throttle_pedal > 0.05
        && List.mem (State.sym s Vehicle.Signals.accel_source) Vehicle.Signals.features)
      trace
  in
  let o = run ~defects:{ repaired with arbiter_selects_under_pedals = true } 4 in
  Alcotest.(check bool) "defect extends subsystem control under throttle" true
    (under_throttle o.trace > under_throttle (base 4).trace)

let () =
  Alcotest.run "defects"
    [
      ( "toggles",
        [
          Alcotest.test_case "pa_ghost_requests" `Slow test_pa_ghost_requests;
          Alcotest.test_case "ca_no_hysteresis" `Slow test_ca_no_hysteresis;
          Alcotest.test_case "radar_min_range_dropout" `Quick test_radar_min_range_dropout;
          Alcotest.test_case "arbiter_steering_priority_reversed" `Slow
            test_arbiter_steering_priority_reversed;
          Alcotest.test_case "arbiter_selected_latch" `Slow test_arbiter_selected_latch;
          Alcotest.test_case "acc_controls_when_disengaged" `Slow
            test_acc_controls_when_disengaged;
          Alcotest.test_case "acc_no_gear_check" `Slow test_acc_no_gear_check;
          Alcotest.test_case "acc_integrator_windup" `Slow test_acc_integrator_windup;
          Alcotest.test_case "acc_no_standstill_clamp" `Slow test_acc_no_standstill_clamp;
          Alcotest.test_case "lca_steering_ignored" `Slow test_lca_steering_ignored;
          Alcotest.test_case "rca_never_engages" `Slow test_rca_never_engages;
          Alcotest.test_case "pa_command_mismatch" `Slow test_pa_command_mismatch;
          Alcotest.test_case "powertrain_creep_on_engage" `Slow
            test_powertrain_creep_on_engage;
          Alcotest.test_case "arbiter_dual_selected" `Slow test_arbiter_dual_selected;
          Alcotest.test_case "arbiter_selects_under_pedals" `Slow
            test_arbiter_selects_under_pedals;
        ] );
    ]
