(** The observability layer: monotonic clock, metrics registry math,
    span nesting, JSON round-tripping, and the golden obs/1 snapshot
    schema the CLIs and the bench harness emit. *)

(* Metrics and spans are process-global; reset before each test so suites
   don't observe each other's counters. *)
let fresh () =
  Obs.Metrics.reset ();
  Obs.Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Clock                                                                *)

let test_clock_monotonic () =
  let a = Obs.Clock.now () in
  Unix.sleepf 0.01;
  let b = Obs.Clock.now () in
  Alcotest.(check bool) "time advances" true (b > a);
  Alcotest.(check bool) "sleep measured" true (b -. a >= 0.009);
  let rec strictly_ordered n last =
    n = 0
    ||
    let t = Obs.Clock.now_ns () in
    t >= last && strictly_ordered (n - 1) t
  in
  Alcotest.(check bool) "ns clock never steps back" true
    (strictly_ordered 1000 (Obs.Clock.now_ns ()))

let test_clock_elapsed () =
  let v, dt = Obs.Clock.elapsed (fun () -> Unix.sleepf 0.02; 7) in
  Alcotest.(check int) "result threaded" 7 v;
  Alcotest.(check bool) "duration covers the sleep" true (dt >= 0.019);
  Alcotest.(check bool) "uptime positive" true (Obs.Clock.uptime () > 0.)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_counter () =
  fresh ();
  let c = Obs.Metrics.counter "t.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "incr accumulates" 42 (Obs.Metrics.value c);
  (* find-or-create: the same name is the same cell *)
  let c' = Obs.Metrics.counter "t.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "registry shares by name" 43 (Obs.Metrics.value c);
  Alcotest.(check string) "name preserved" "t.counter" (Obs.Metrics.counter_name c)

let test_gauge () =
  fresh ();
  let g = Obs.Metrics.gauge "t.gauge" in
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "set/get" 2.5 (Obs.Metrics.get g);
  Obs.Metrics.set g 1.0;
  Alcotest.(check (float 1e-9)) "gauge overwrites" 1.0 (Obs.Metrics.get g)

let test_kind_clash () =
  fresh ();
  ignore (Obs.Metrics.counter "t.clash");
  Alcotest.(check bool) "re-registering as another kind raises" true
    (match Obs.Metrics.gauge "t.clash" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_histogram_math () =
  fresh ();
  let h = Obs.Metrics.histogram "t.hist" in
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.summary h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 5050. s.Obs.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1. s.Obs.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100. s.Obs.Metrics.max;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Obs.Metrics.mean;
  Alcotest.(check (float 1.0)) "p50 near the median" 50. s.Obs.Metrics.p50;
  Alcotest.(check (float 1.0)) "p95 near the 95th" 95. s.Obs.Metrics.p95

let test_histogram_window () =
  fresh ();
  (* window 4: quantiles see only the last 4 observations; the lifetime
     aggregates still see all of them *)
  let h = Obs.Metrics.histogram ~window:4 "t.windowed" in
  List.iter (Obs.Metrics.observe h) [ 1000.; 1.; 2.; 3.; 4. ];
  let s = Obs.Metrics.summary h in
  Alcotest.(check int) "lifetime count" 5 s.Obs.Metrics.count;
  Alcotest.(check (float 1e-9)) "lifetime max" 1000. s.Obs.Metrics.max;
  Alcotest.(check bool) "median from the window only" true (s.Obs.Metrics.p50 <= 4.)

let test_reset () =
  fresh ();
  let c = Obs.Metrics.counter "t.reset" in
  Obs.Metrics.incr ~by:5 c;
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes the value" 0 (Obs.Metrics.value c);
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "t.reset" snap.Obs.Metrics.snap_counters)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

let test_span_nesting () =
  fresh ();
  let v =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> ());
        5)
  in
  Alcotest.(check int) "result threaded" 5 v;
  match Obs.Trace.recent () with
  | [ inner; outer ] ->
      (* inner completes (and records) first *)
      Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
      Alcotest.(check int) "inner depth" 1 inner.Obs.Trace.depth;
      Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
      Alcotest.(check int) "outer depth" 0 outer.Obs.Trace.depth;
      Alcotest.(check bool) "outer contains inner" true
        (outer.Obs.Trace.dur_s >= inner.Obs.Trace.dur_s)
  | spans -> Alcotest.fail (Fmt.str "expected 2 spans, got %d" (List.length spans))

let test_span_exception () =
  fresh ();
  (match Obs.span "failing" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected the exception to propagate"
  | exception Failure _ -> ());
  Alcotest.(check int) "span recorded despite the raise" 1 (Obs.Trace.total ())

let test_span_ring_overflow () =
  fresh ();
  let n = Obs.Trace.capacity + 10 in
  for i = 1 to n do
    Obs.span (Fmt.str "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "lifetime total counts overwritten spans" n
    (Obs.Trace.total ());
  let recent = Obs.Trace.recent () in
  Alcotest.(check int) "ring holds exactly capacity" Obs.Trace.capacity
    (List.length recent);
  Alcotest.(check string) "oldest retained span is n - capacity + 1"
    (Fmt.str "s%d" (n - Obs.Trace.capacity + 1))
    (List.hd recent).Obs.Trace.name

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("s", Str "a \"quoted\" line\nwith\ttabs");
        ("n", Num 1.5);
        ("i", Num 3.);
        ("big", Num 1e120);
        ("t", Bool true);
        ("z", Null);
        ("l", List [ Num 1.; Str "x"; Obj [] ]);
      ]
  in
  match of_string (to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trips structurally" true (doc = doc')
  | Error e -> Alcotest.fail e

let test_json_rendering () =
  let open Obs.Json in
  Alcotest.(check string) "integral floats have no fraction" "42"
    (to_string (Num 42.));
  Alcotest.(check string) "non-finite renders null" "null"
    (to_string (Num Float.nan));
  Alcotest.(check string) "escapes" {|"a\"b\\c\n"|} (to_string (Str "a\"b\\c\n"))

let test_json_errors () =
  let open Obs.Json in
  List.iter
    (fun s ->
      match of_string s with
      | Ok _ -> Alcotest.fail (Fmt.str "parsed invalid input %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{} trailing" ]

(* ------------------------------------------------------------------ *)
(* Golden snapshot schema                                               *)

let test_export_schema_golden () =
  (* The obs/1 contract CI and external consumers parse: pin the field
     names and order, not the values. Renaming, reordering or dropping a
     field is a schema break and must be a conscious version bump. *)
  Alcotest.(check string) "schema version" "obs/1" Obs.Export.schema_version;
  Alcotest.(check (list string))
    "top-level fields, emitted order"
    [
      "schema";
      "name";
      "created_unix";
      "uptime_s";
      "counters";
      "gauges";
      "histograms";
      "spans";
      "spans_dropped";
      "bench";
    ]
    Obs.Export.top_level_fields;
  Alcotest.(check (list string))
    "histogram summary fields, emitted order"
    [ "count"; "sum"; "min"; "max"; "mean"; "p50"; "p95" ]
    Obs.Export.histogram_fields

let test_export_validates () =
  fresh ();
  (* a populated snapshot — counters, histogram, span, bench — validates *)
  Obs.Metrics.incr (Obs.Metrics.counter "t.export.counter");
  Obs.Metrics.set (Obs.Metrics.gauge "t.export.gauge") 3.5;
  Obs.Metrics.observe (Obs.Metrics.histogram "t.export.hist") 0.25;
  Obs.span "t.export.span" (fun () -> ());
  let raw = Obs.Export.to_json ~name:"unit" ~bench:[ ("b1", 123.5) ] () in
  (match Obs.Export.validate_string raw with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* and the emitted values survive the round trip *)
  let json = Result.get_ok (Obs.Json.of_string raw) in
  let counters = Option.get (Obs.Json.member "counters" json) in
  Alcotest.(check (option (float 1e-9)))
    "counter value exported" (Some 1.)
    (Option.bind (Obs.Json.member "t.export.counter" counters) Obs.Json.to_float);
  Alcotest.(check (option string))
    "run name exported" (Some "unit")
    (Option.bind (Obs.Json.member "name" json) Obs.Json.to_str)

let test_export_rejects_corruption () =
  fresh ();
  let raw = Obs.Export.to_json () in
  List.iter
    (fun (label, broken) ->
      match Obs.Export.validate_string broken with
      | Ok () -> Alcotest.fail (Fmt.str "%s passed validation" label)
      | Error _ -> ())
    [
      ("not JSON", "][");
      ("not an object", "[1,2]");
      ( "wrong schema tag",
        Str.replace_first (Str.regexp_string "obs/1") "obs/9" raw );
      ( "missing field",
        Str.replace_first (Str.regexp_string "\"spans_dropped\":") "\"zz\":" raw
      );
    ]

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "elapsed" `Quick test_clock_elapsed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind clash refused" `Quick test_kind_clash;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_math;
          Alcotest.test_case "histogram window" `Quick test_histogram_window;
          Alcotest.test_case "reset keeps registrations" `Quick test_reset;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting depth and order" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick test_span_exception;
          Alcotest.test_case "ring overflow" `Quick test_span_ring_overflow;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "export",
        [
          Alcotest.test_case "golden schema fields" `Quick test_export_schema_golden;
          Alcotest.test_case "snapshot validates" `Quick test_export_validates;
          Alcotest.test_case "corruption rejected" `Quick
            test_export_rejects_corruption;
        ] );
    ]
