(** Crash-safe journal: round-trips, tolerance to torn and corrupted
    tails, and the campaign resume contract (resumed run = uninterrupted
    run, bit-for-bit, re-simulating only the missing cells). *)

module Journal_access = Scenarios.Journal

let tmp name =
  let path = Filename.temp_file "journal_test_" ("_" ^ name ^ ".jnl") in
  Sys.remove path;
  path

let with_path name f =
  let path = tmp name in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Record-level robustness                                              *)

let entries_t = Alcotest.(list (pair string (pair int string)))

let test_round_trip () =
  with_path "roundtrip" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two");
      Journal_access.append w ~key:"c" (3, "three"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "entries in append order"
    [ ("a", (1, "one")); ("b", (2, "two")); ("c", (3, "three")) ]
    r.Journal_access.entries;
  Alcotest.(check int) "3 records" 3 r.Journal_access.records;
  Alcotest.(check int) "no duplicates" 0 r.Journal_access.duplicates;
  Alcotest.(check int) "nothing dropped" 0 r.Journal_access.dropped_bytes

let test_absent_and_empty () =
  with_path "absent" @@ fun path ->
  let r = (Journal_access.replay path : (int * string) Journal_access.replay) in
  Alcotest.check entries_t "absent file: empty" [] r.Journal_access.entries;
  Alcotest.(check int) "absent file: nothing dropped" 0 r.Journal_access.dropped_bytes;
  (* An empty file (created, nothing appended) also replays clean. *)
  Journal_access.with_writer path (fun _ -> ());
  let r = (Journal_access.replay path : (int * string) Journal_access.replay) in
  Alcotest.check entries_t "empty file: empty" [] r.Journal_access.entries;
  Alcotest.(check int) "empty file: nothing dropped" 0 r.Journal_access.dropped_bytes

let test_truncated_tail () =
  with_path "torn" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two"));
  (* Tear the final record mid-payload, as a crash mid-append would. *)
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 5);
  let r = Journal_access.replay path in
  Alcotest.check entries_t "intact prefix survives"
    [ ("a", (1, "one")) ]
    r.Journal_access.entries;
  Alcotest.(check bool) "torn bytes counted" true (r.Journal_access.dropped_bytes > 0)

let test_bit_flip () =
  with_path "flip" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two"));
  let size = (Unix.stat path).Unix.st_size in
  (* Flip one bit in the last record's payload: its CRC must reject it
     while the first record replays untouched. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
      let b = Bytes.create 1 in
      assert (Unix.read fd b 0 1 = 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
      assert (Unix.write fd b 0 1 = 1));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "corrupt record rejected, prefix kept"
    [ ("a", (1, "one")) ]
    r.Journal_access.entries;
  Alcotest.(check bool) "corrupt bytes counted" true
    (r.Journal_access.dropped_bytes > 0)

let test_duplicate_last_wins () =
  with_path "dup" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "stale");
      Journal_access.append w ~key:"b" (2, "two");
      Journal_access.append w ~key:"a" (3, "fresh"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "last occurrence wins, first-appearance order"
    [ ("a", (3, "fresh")); ("b", (2, "two")) ]
    r.Journal_access.entries;
  Alcotest.(check int) "all intact records counted" 3 r.Journal_access.records;
  Alcotest.(check int) "one duplicate" 1 r.Journal_access.duplicates

let test_fresh_truncates_append_extends () =
  with_path "fresh" @@ fun path ->
  Journal_access.with_writer path (fun w -> Journal_access.append w ~key:"a" (1, "one"));
  Journal_access.with_writer path (fun w -> Journal_access.append w ~key:"b" (2, "two"));
  let r = Journal_access.replay path in
  Alcotest.(check int) "default append mode extends" 2 (List.length r.Journal_access.entries);
  Journal_access.with_writer ~fresh:true path (fun w ->
      Journal_access.append w ~key:"c" (3, "three"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "fresh mode truncates"
    [ ("c", (3, "three")) ]
    r.Journal_access.entries

let test_crc32_vector () =
  (* The standard check value: CRC-32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "IEEE 802.3 check vector" 0xCBF43926l
    (Journal_access.crc32 "123456789");
  Alcotest.(check int32) "empty string" 0l (Journal_access.crc32 "")

(* ------------------------------------------------------------------ *)
(* Campaign resume contract                                             *)

let grid seed =
  let smoke = Scenarios.Campaign.smoke ~seed () in
  (* Two faults × two scenarios: small enough for a quick test, large
     enough that a partial journal is meaningful. *)
  {
    Scenarios.Campaign.seed;
    faults =
      (match smoke.Scenarios.Campaign.faults with
      | a :: b :: _ -> [ a; b ]
      | _ -> Alcotest.fail "smoke grid too small");
    grid_scenarios = [ Scenarios.Defs.get 1; Scenarios.Defs.get 3 ];
  }

let strip_robustness (c : Scenarios.Campaign.t) =
  Scenarios.Export.campaign_csv c

let test_campaign_journal_fresh_and_replay () =
  with_path "campaign" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  let journaled = Scenarios.Campaign.run ~domains:1 ~journal:path g in
  Alcotest.(check string) "journaled run = plain run (CSV)"
    (strip_robustness baseline) (strip_robustness journaled);
  let r = journaled.Scenarios.Campaign.robustness in
  Alcotest.(check int) "fresh run executed every cell" 4 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "fresh run replayed nothing" 0 r.Scenarios.Campaign.replayed;
  (* Full replay: drop the in-process caches to prove the cells come from
     the journal, not from memory. *)
  Scenarios.Runner.clear_cache ();
  let misses_before = (Scenarios.Runner.cache_stats ()).Exec.Memo.misses in
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "replayed run = plain run (CSV)"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "replay executed nothing" 0 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "replay restored every cell" 4 r.Scenarios.Campaign.replayed;
  Alcotest.(check int) "no cell re-simulated"
    misses_before
    (Scenarios.Runner.cache_stats ()).Exec.Memo.misses

let test_campaign_partial_resume () =
  with_path "partial" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  (* Simulate a campaign killed partway: journal only the first fault's
     cells by running a sub-grid against the same journal path. *)
  let partial = { g with Scenarios.Campaign.faults = [ List.hd g.Scenarios.Campaign.faults ] } in
  let first = Scenarios.Campaign.run ~domains:1 ~journal:path partial in
  Alcotest.(check int) "partial run journaled 2 cells" 2
    first.Scenarios.Campaign.robustness.Scenarios.Campaign.executed;
  (* Resume the *full* grid from the partial journal: only the second
     fault's cells may execute, and the matrix must be bit-for-bit the
     uninterrupted one. *)
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "resumed CSV = uninterrupted CSV"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "only missing cells executed" 2 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "journaled cells replayed" 2 r.Scenarios.Campaign.replayed;
  Alcotest.(check int) "nothing quarantined" 0 r.Scenarios.Campaign.quarantined;
  (* And the journal now holds the full grid: a second resume replays
     everything. *)
  let again = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check int) "second resume replays all" 4
    again.Scenarios.Campaign.robustness.Scenarios.Campaign.replayed;
  Alcotest.(check string) "second resume still identical"
    (strip_robustness baseline) (strip_robustness again)

let test_campaign_journal_corrupt_tail_recovers () =
  with_path "crashy" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  ignore (Scenarios.Campaign.run ~domains:1 ~journal:path g);
  (* Tear the journal's final record, as SIGKILL mid-append would, then
     resume: the torn cell re-executes and the matrix is unchanged. *)
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 7);
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "resume over torn tail = uninterrupted"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "torn cell re-executed" 1 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "intact cells replayed" 3 r.Scenarios.Campaign.replayed

let () =
  Alcotest.run "journal"
    [
      ( "records",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "absent and empty files" `Quick test_absent_and_empty;
          Alcotest.test_case "truncated tail skipped" `Quick test_truncated_tail;
          Alcotest.test_case "bit flip rejected by CRC" `Quick test_bit_flip;
          Alcotest.test_case "duplicate keys: last wins" `Quick
            test_duplicate_last_wins;
          Alcotest.test_case "fresh truncates, append extends" `Quick
            test_fresh_truncates_append_extends;
          Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "journal + full replay" `Slow
            test_campaign_journal_fresh_and_replay;
          Alcotest.test_case "partial journal resumes to identical matrix" `Slow
            test_campaign_partial_resume;
          Alcotest.test_case "torn tail re-executes only the torn cell" `Slow
            test_campaign_journal_corrupt_tail_recovers;
        ] );
    ]
