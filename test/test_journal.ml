(** Crash-safe journal: round-trips, tolerance to torn and corrupted
    tails, and the campaign resume contract (resumed run = uninterrupted
    run, bit-for-bit, re-simulating only the missing cells). *)

module Journal_access = Scenarios.Journal

let tmp name =
  let path = Filename.temp_file "journal_test_" ("_" ^ name ^ ".jnl") in
  Sys.remove path;
  path

let with_path name f =
  let path = tmp name in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Record-level robustness                                              *)

let entries_t = Alcotest.(list (pair string (pair int string)))

let test_round_trip () =
  with_path "roundtrip" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two");
      Journal_access.append w ~key:"c" (3, "three"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "entries in append order"
    [ ("a", (1, "one")); ("b", (2, "two")); ("c", (3, "three")) ]
    r.Journal_access.entries;
  Alcotest.(check int) "3 records" 3 r.Journal_access.records;
  Alcotest.(check int) "no duplicates" 0 r.Journal_access.duplicates;
  Alcotest.(check int) "nothing dropped" 0 r.Journal_access.dropped_bytes

let test_absent_and_empty () =
  with_path "absent" @@ fun path ->
  let r = (Journal_access.replay path : (int * string) Journal_access.replay) in
  Alcotest.check entries_t "absent file: empty" [] r.Journal_access.entries;
  Alcotest.(check int) "absent file: nothing dropped" 0 r.Journal_access.dropped_bytes;
  (* An empty file (created, nothing appended) also replays clean. *)
  Journal_access.with_writer path (fun _ -> ());
  let r = (Journal_access.replay path : (int * string) Journal_access.replay) in
  Alcotest.check entries_t "empty file: empty" [] r.Journal_access.entries;
  Alcotest.(check int) "empty file: nothing dropped" 0 r.Journal_access.dropped_bytes

let test_truncated_tail () =
  with_path "torn" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two"));
  (* Tear the final record mid-payload, as a crash mid-append would. *)
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 5);
  let r = Journal_access.replay path in
  Alcotest.check entries_t "intact prefix survives"
    [ ("a", (1, "one")) ]
    r.Journal_access.entries;
  Alcotest.(check bool) "torn bytes counted" true (r.Journal_access.dropped_bytes > 0)

let test_bit_flip () =
  with_path "flip" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two"));
  let size = (Unix.stat path).Unix.st_size in
  (* Flip one bit in the last record's payload: its CRC must reject it
     while the first record replays untouched. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
      let b = Bytes.create 1 in
      assert (Unix.read fd b 0 1 = 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
      assert (Unix.write fd b 0 1 = 1));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "corrupt record rejected, prefix kept"
    [ ("a", (1, "one")) ]
    r.Journal_access.entries;
  Alcotest.(check bool) "corrupt bytes counted" true
    (r.Journal_access.dropped_bytes > 0)

let test_duplicate_last_wins () =
  with_path "dup" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "stale");
      Journal_access.append w ~key:"b" (2, "two");
      Journal_access.append w ~key:"a" (3, "fresh"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "last occurrence wins, first-appearance order"
    [ ("a", (3, "fresh")); ("b", (2, "two")) ]
    r.Journal_access.entries;
  Alcotest.(check int) "all intact records counted" 3 r.Journal_access.records;
  Alcotest.(check int) "one duplicate" 1 r.Journal_access.duplicates

let test_fresh_truncates_append_extends () =
  with_path "fresh" @@ fun path ->
  Journal_access.with_writer path (fun w -> Journal_access.append w ~key:"a" (1, "one"));
  Journal_access.with_writer path (fun w -> Journal_access.append w ~key:"b" (2, "two"));
  let r = Journal_access.replay path in
  Alcotest.(check int) "default append mode extends" 2 (List.length r.Journal_access.entries);
  Journal_access.with_writer ~fresh:true path (fun w ->
      Journal_access.append w ~key:"c" (3, "three"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "fresh mode truncates"
    [ ("c", (3, "three")) ]
    r.Journal_access.entries

let test_fold_streams_with_stats () =
  with_path "fold" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two");
      Journal_access.append w ~key:"a" (3, "fresh"));
  (* fold streams every intact record in append order — duplicates
     included; last-wins collapsing is replay's job, not fold's. *)
  let keys, stats =
    Journal_access.fold path ~init:[] ~f:(fun acc k ((_ : int), (_ : string)) ->
        k :: acc)
  in
  Alcotest.(check (list string)) "append order, duplicates kept" [ "a"; "b"; "a" ]
    (List.rev keys);
  Alcotest.(check int) "records counted" 3 stats.Journal_access.fold_records;
  Alcotest.(check int) "nothing dropped" 0 stats.Journal_access.fold_dropped_bytes;
  Alcotest.(check int) "valid bytes = file size"
    (Unix.stat path).Unix.st_size stats.Journal_access.fold_valid_bytes

let test_repair_reclaims_torn_tail () =
  with_path "repair" @@ fun path ->
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Journal_access.append w ~key:"b" (2, "two"));
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 5);
  (* Without repair, appends after the tear would be unreachable: replay
     stops at the first invalid record, so anything written beyond it is
     durable but dead. repair truncates the torn bytes first. *)
  let dropped = Journal_access.repair path in
  Alcotest.(check bool) "torn bytes reclaimed" true (dropped > 0);
  Journal_access.with_writer path (fun w ->
      Journal_access.append w ~key:"c" (3, "three"));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "post-repair appends replay"
    [ ("a", (1, "one")); ("c", (3, "three")) ]
    r.Journal_access.entries;
  Alcotest.(check int) "file is clean again" 0 (Journal_access.repair path)

let test_crc32_vector () =
  (* The standard check value: CRC-32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "IEEE 802.3 check vector" 0xCBF43926l
    (Journal_access.crc32 "123456789");
  Alcotest.(check int32) "empty string" 0l (Journal_access.crc32 "")

(* ------------------------------------------------------------------ *)
(* Device failures: typed errors and degraded mode                      *)

let counter name = Obs.Metrics.value (Obs.Metrics.counter name)

(* A chaos hook failing the [n]-th append's write (1-based). *)
let write_fails_at n =
  let appends = ref 0 in
  function
  | `Write ->
      incr appends;
      !appends = n
  | `Fsync -> false

let test_write_fault_raises_typed_io_error () =
  with_path "wfault_raise" @@ fun path ->
  (* Under the default `Raise policy a device failure surfaces as the
     typed Io_error carrying the path and the failing syscall — never as
     a raw Unix_error or Sys_error. *)
  let w = Journal_access.create ~fault:(write_fails_at 2) path in
  Fun.protect
    ~finally:(fun () -> Journal_access.close w)
    (fun () ->
      Journal_access.append w ~key:"a" (1, "one");
      match Journal_access.append w ~key:"b" (2, "two") with
      | () -> Alcotest.fail "the faulted append must raise"
      | exception Journal_access.Io_error { path = p; op; error } ->
          Alcotest.(check string) "path carried" path p;
          Alcotest.(check string) "op is the failing syscall" "write" op;
          Alcotest.(check bool) "errno message present" true
            (String.length error > 0);
          Alcotest.(check bool) "writer not degraded under `Raise" false
            (Journal_access.degraded w))

let test_write_fault_degrades_and_replay_keeps_prefix () =
  with_path "wfault_degrade" @@ fun path ->
  let errors0 = counter "journal.write_errors" in
  let dropped0 = counter "journal.appends_dropped" in
  Journal_access.with_writer ~on_error:`Degrade ~fault:(write_fails_at 2) path
    (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Alcotest.(check bool) "healthy so far" false (Journal_access.degraded w);
      (* The faulted append tears the record on disk and is absorbed. *)
      Journal_access.append w ~key:"b" (2, "two");
      Alcotest.(check bool) "degraded after the device failure" true
        (Journal_access.degraded w);
      (* Degradation is terminal: later appends are skipped, not
         written after the torn record (replay would never reach them). *)
      Journal_access.append w ~key:"c" (3, "three"));
  Alcotest.(check int) "one write error counted" 1
    (counter "journal.write_errors" - errors0);
  Alcotest.(check int) "one post-failure append dropped" 1
    (counter "journal.appends_dropped" - dropped0);
  (* Replay integrity: the intact prefix survives, the torn record is
     rejected, and nothing after it ever reached the file. *)
  let r = Journal_access.replay path in
  Alcotest.check entries_t "only the pre-fault prefix replays"
    [ ("a", (1, "one")) ]
    r.Journal_access.entries;
  Alcotest.(check bool) "the torn record's bytes counted as dropped" true
    (r.Journal_access.dropped_bytes > 0)

let test_fsync_fault_degrades () =
  with_path "ffault" @@ fun path ->
  (* An fsync failure (ENOSPC) after a fully flushed record: the record
     is on disk, but durability is gone — the writer degrades all the
     same, and the flushed record still replays. *)
  let fault = function `Write -> false | `Fsync -> true in
  Journal_access.with_writer ~on_error:`Degrade ~fault path (fun w ->
      Journal_access.append w ~key:"a" (1, "one");
      Alcotest.(check bool) "degraded by the fsync failure" true
        (Journal_access.degraded w));
  let r = Journal_access.replay path in
  Alcotest.check entries_t "the flushed record replays"
    [ ("a", (1, "one")) ]
    r.Journal_access.entries

let test_closed_writer_rejected () =
  with_path "closed" @@ fun path ->
  let w = Journal_access.create path in
  Journal_access.append w ~key:"a" (1, "one");
  Journal_access.close w;
  Alcotest.check_raises "append after close rejected"
    (Invalid_argument "Journal.append: writer is closed") (fun () ->
      Journal_access.append w ~key:"b" (2, "two"))

(* ------------------------------------------------------------------ *)
(* Campaign resume contract                                             *)

let grid seed =
  let smoke = Scenarios.Campaign.smoke ~seed () in
  (* Two faults × two scenarios: small enough for a quick test, large
     enough that a partial journal is meaningful. *)
  {
    Scenarios.Campaign.seed;
    faults =
      (match smoke.Scenarios.Campaign.faults with
      | a :: b :: _ -> [ a; b ]
      | _ -> Alcotest.fail "smoke grid too small");
    grid_scenarios = [ Scenarios.Defs.get 1; Scenarios.Defs.get 3 ];
  }

let strip_robustness (c : Scenarios.Campaign.t) =
  Scenarios.Export.campaign_csv c

let test_campaign_journal_fresh_and_replay () =
  with_path "campaign" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  let journaled = Scenarios.Campaign.run ~domains:1 ~journal:path g in
  Alcotest.(check string) "journaled run = plain run (CSV)"
    (strip_robustness baseline) (strip_robustness journaled);
  let r = journaled.Scenarios.Campaign.robustness in
  Alcotest.(check int) "fresh run executed every cell" 4 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "fresh run replayed nothing" 0 r.Scenarios.Campaign.replayed;
  (* Full replay: drop the in-process caches to prove the cells come from
     the journal, not from memory. *)
  Scenarios.Runner.clear_cache ();
  let misses_before = (Scenarios.Runner.cache_stats ()).Exec.Memo.misses in
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "replayed run = plain run (CSV)"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "replay executed nothing" 0 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "replay restored every cell" 4 r.Scenarios.Campaign.replayed;
  Alcotest.(check int) "no cell re-simulated"
    misses_before
    (Scenarios.Runner.cache_stats ()).Exec.Memo.misses

let test_campaign_partial_resume () =
  with_path "partial" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  (* Simulate a campaign killed partway: journal only the first fault's
     cells by running a sub-grid against the same journal path. *)
  let partial = { g with Scenarios.Campaign.faults = [ List.hd g.Scenarios.Campaign.faults ] } in
  let first = Scenarios.Campaign.run ~domains:1 ~journal:path partial in
  Alcotest.(check int) "partial run journaled 2 cells" 2
    first.Scenarios.Campaign.robustness.Scenarios.Campaign.executed;
  (* Resume the *full* grid from the partial journal: only the second
     fault's cells may execute, and the matrix must be bit-for-bit the
     uninterrupted one. *)
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "resumed CSV = uninterrupted CSV"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "only missing cells executed" 2 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "journaled cells replayed" 2 r.Scenarios.Campaign.replayed;
  Alcotest.(check int) "nothing quarantined" 0 r.Scenarios.Campaign.quarantined;
  (* And the journal now holds the full grid: a second resume replays
     everything. *)
  let again = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check int) "second resume replays all" 4
    again.Scenarios.Campaign.robustness.Scenarios.Campaign.replayed;
  Alcotest.(check string) "second resume still identical"
    (strip_robustness baseline) (strip_robustness again)

let test_campaign_journal_corrupt_tail_recovers () =
  with_path "crashy" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  ignore (Scenarios.Campaign.run ~domains:1 ~journal:path g);
  (* Tear the journal's final record, as SIGKILL mid-append would, then
     resume: the torn cell re-executes and the matrix is unchanged. *)
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 7);
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "resume over torn tail = uninterrupted"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "torn cell re-executed" 1 r.Scenarios.Campaign.executed;
  Alcotest.(check int) "intact cells replayed" 3 r.Scenarios.Campaign.replayed;
  (* The resume repaired the tear before appending, so the re-executed
     cell is reachable: a second resume replays the full grid instead of
     silently re-simulating it forever. *)
  let again = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check int) "second resume replays everything" 4
    again.Scenarios.Campaign.robustness.Scenarios.Campaign.replayed;
  Alcotest.(check int) "second resume executes nothing" 0
    again.Scenarios.Campaign.robustness.Scenarios.Campaign.executed

let test_campaign_survives_journal_write_fault () =
  with_path "chaosjnl" @@ fun path ->
  let g = grid 42 in
  let baseline = Scenarios.Campaign.run ~domains:1 g in
  (* A journal device failure mid-campaign (3rd append's write fails):
     the campaign must finish with a bit-for-bit identical matrix,
     flagged degraded, and a resume from the truncated journal must
     re-execute exactly the cells lost to the failure. *)
  let chaos =
    match Exec.Chaos.parse ~seed:42 "jwrite@3" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let chaotic = Scenarios.Campaign.run ~domains:1 ~journal:path ~chaos g in
  Alcotest.(check string) "degraded run = plain run (CSV)"
    (strip_robustness baseline) (strip_robustness chaotic);
  Alcotest.(check bool) "robustness reports the degradation" true
    chaotic.Scenarios.Campaign.robustness.Scenarios.Campaign.degraded;
  (* Only appends 1–2 reached the file; the resume re-runs cells 3–4. *)
  Scenarios.Runner.clear_cache ();
  let resumed = Scenarios.Campaign.run ~domains:1 ~journal:path ~resume:true g in
  Alcotest.(check string) "resumed CSV still identical"
    (strip_robustness baseline) (strip_robustness resumed);
  let r = resumed.Scenarios.Campaign.robustness in
  Alcotest.(check int) "the 2 unjournaled cells re-executed" 2
    r.Scenarios.Campaign.executed;
  Alcotest.(check int) "the 2 durable cells replayed" 2
    r.Scenarios.Campaign.replayed;
  Alcotest.(check bool) "resume with a healthy device is not degraded" false
    r.Scenarios.Campaign.degraded

let () =
  Alcotest.run "journal"
    [
      ( "records",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "absent and empty files" `Quick test_absent_and_empty;
          Alcotest.test_case "truncated tail skipped" `Quick test_truncated_tail;
          Alcotest.test_case "bit flip rejected by CRC" `Quick test_bit_flip;
          Alcotest.test_case "duplicate keys: last wins" `Quick
            test_duplicate_last_wins;
          Alcotest.test_case "fresh truncates, append extends" `Quick
            test_fresh_truncates_append_extends;
          Alcotest.test_case "fold streams with stats" `Quick
            test_fold_streams_with_stats;
          Alcotest.test_case "repair reclaims a torn tail" `Quick
            test_repair_reclaims_torn_tail;
          Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
        ] );
      ( "device failures",
        [
          Alcotest.test_case "write fault raises typed Io_error" `Quick
            test_write_fault_raises_typed_io_error;
          Alcotest.test_case "write fault degrades; replay keeps the prefix"
            `Quick test_write_fault_degrades_and_replay_keeps_prefix;
          Alcotest.test_case "fsync fault degrades" `Quick
            test_fsync_fault_degrades;
          Alcotest.test_case "append after close rejected" `Quick
            test_closed_writer_rejected;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "journal + full replay" `Slow
            test_campaign_journal_fresh_and_replay;
          Alcotest.test_case "partial journal resumes to identical matrix" `Slow
            test_campaign_partial_resume;
          Alcotest.test_case "torn tail re-executes only the torn cell" `Slow
            test_campaign_journal_corrupt_tail_recovers;
          Alcotest.test_case "journal write fault degrades, matrix unchanged"
            `Slow test_campaign_survives_journal_write_fault;
        ] );
    ]
