(** Chaos plans: the [--chaos] grammar, trigger determinism, and the
    hook derivations the execution layers consult at their injection
    points. The end-to-end behaviour of the injected faults lives in
    [test_shard] (worker and spawn faults) and [test_journal] (journal
    faults); this suite pins the plan algebra itself. *)

let plan spec =
  match Exec.Chaos.parse ~seed:7 spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %S: %s" spec e

let test_parse_canonical_round_trip () =
  List.iter
    (fun spec ->
      let p = plan spec in
      Alcotest.(check string) (spec ^ ": canonical form") spec
        (Exec.Chaos.to_string p);
      match Exec.Chaos.parse ~seed:7 (Exec.Chaos.to_string p) with
      | Ok q ->
          Alcotest.(check bool) (spec ^ ": to_string round-trips") true (p = q)
      | Error e -> Alcotest.failf "re-parse %S: %s" spec e)
    [
      "hang@2";
      "crash@4,torn@6,corrupt@8";
      "slow@3:0.5";
      "hang~0.25,slow~0.1:2";
      "jwrite@3,jfsync@5,spawn@1";
      "accept@1,sread@2,swrite@3";
      "sread~0.25";
      "hang@2,hang@9";
    ]

let test_parse_tolerates_whitespace () =
  Alcotest.(check bool) "terms are trimmed" true
    (plan " hang@2 , crash@4 " = plan "hang@2,crash@4")

let test_parse_errors () =
  List.iter
    (fun (spec, needle) ->
      match Exec.Chaos.parse spec with
      | Ok _ -> Alcotest.failf "%S must not parse" spec
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error mentions %S (got %S)" spec needle e)
            true
            (Str.string_match (Str.regexp (".*" ^ Str.quote needle)) e 0))
    [
      ("", "empty");
      ("hang", "KIND@N");
      ("hang@0", "positive");
      ("hang~1.5", "[0, 1]");
      ("bogus@1", "unknown");
      ("hang@1:3", "slow");
      ("slow@1", "SECS");
      ("jwrite@1,jwrite@2", "duplicate");
      ("accept@1,accept@2", "duplicate");
      ("hang@1~0.5", "at most one");
    ]

let test_fires_determinism () =
  (* [At n] fires on exactly the n-th opportunity. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) "At fires on its index" true
        (Exec.Chaos.fires ~seed:1 ~salt:3 ~n (Exec.Chaos.At n));
      Alcotest.(check bool) "At silent elsewhere" false
        (Exec.Chaos.fires ~seed:1 ~salt:3 ~n:(n + 1) (Exec.Chaos.At n)))
    [ 1; 2; 5; 100 ];
  (* [Rate p] is a pure function of (seed, salt, n): same inputs, same
     draw — never a function of how many draws came before. *)
  let draw seed salt n =
    Exec.Chaos.fires ~seed ~salt ~n (Exec.Chaos.Rate 0.5)
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) "Rate deterministic" (draw 42 1 n) (draw 42 1 n))
    (List.init 20 (fun i -> i + 1));
  List.iter
    (fun n ->
      Alcotest.(check bool) "Rate 0. never fires" false
        (Exec.Chaos.fires ~seed:42 ~salt:1 ~n (Exec.Chaos.Rate 0.));
      Alcotest.(check bool) "Rate 1. always fires" true
        (Exec.Chaos.fires ~seed:42 ~salt:1 ~n (Exec.Chaos.Rate 1.)))
    (List.init 10 (fun i -> i + 1));
  (* Different seeds decorrelate: at least one of 64 draws differs. *)
  Alcotest.(check bool) "seed changes the draws" true
    (List.exists
       (fun n -> draw 1 1 n <> draw 2 1 n)
       (List.init 64 (fun i -> i + 1)));
  (* Different salts decorrelate two kinds sharing a seed. *)
  Alcotest.(check bool) "salt changes the draws" true
    (List.exists
       (fun n -> draw 42 1 n <> draw 42 2 n)
       (List.init 64 (fun i -> i + 1)))

let test_is_empty () =
  Alcotest.(check bool) "none is empty" true
    (Exec.Chaos.is_empty Exec.Chaos.none);
  Alcotest.(check bool) "seed alone keeps a plan empty" true
    (Exec.Chaos.is_empty { Exec.Chaos.none with Exec.Chaos.seed = 9 });
  Alcotest.(check bool) "a worker fault makes it non-empty" false
    (Exec.Chaos.is_empty (plan "hang@1"));
  Alcotest.(check bool) "a journal fault makes it non-empty" false
    (Exec.Chaos.is_empty (plan "jwrite@1"))

let test_worker_fault_hook () =
  Alcotest.(check bool) "empty plan derives no hook" true
    (Exec.Chaos.worker_fault Exec.Chaos.none = None);
  let hook = Option.get (Exec.Chaos.worker_fault (plan "hang@2,crash@2,torn@5")) in
  Alcotest.(check bool) "quiet opportunity injects nothing" true
    (hook ~slot:0 ~seq:1 = None);
  Alcotest.(check bool) "first firing entry wins" true
    (hook ~slot:0 ~seq:2 = Some Exec.Chaos.Hang);
  Alcotest.(check bool) "later entries fire on their own index" true
    (hook ~slot:1 ~seq:5 = Some Exec.Chaos.Torn_frame)

let test_spawn_and_journal_hooks () =
  Alcotest.(check bool) "no spawn term, no hook" true
    (Exec.Chaos.spawn_fault (plan "hang@1") = None);
  let p = plan "spawn@1,jwrite@2,jfsync@3" in
  let spawn = Option.get (Exec.Chaos.spawn_fault p) in
  Alcotest.(check bool) "spawn fires on its attempt" true (spawn ~attempt:1);
  Alcotest.(check bool) "spawn silent afterwards" false (spawn ~attempt:2);
  (* The journal hook is stateful: [`Write] advances the append index,
     [`Fsync] reads the same index — one hook per writer. *)
  let j = Option.get (Exec.Chaos.journal_fault p) in
  Alcotest.(check bool) "append 1: write clean" false (j `Write);
  Alcotest.(check bool) "append 1: fsync clean" false (j `Fsync);
  Alcotest.(check bool) "append 2: write fails" true (j `Write);
  Alcotest.(check bool) "append 2: fsync clean" false (j `Fsync);
  Alcotest.(check bool) "append 3: write clean" false (j `Write);
  Alcotest.(check bool) "append 3: fsync fails" true (j `Fsync);
  (* A freshly derived hook starts its append count over. *)
  Alcotest.(check bool) "fresh derivation restarts the count" false
    (Option.get (Exec.Chaos.journal_fault p) `Write)

let test_server_fault_hook () =
  Alcotest.(check bool) "worker-only plan derives no server hook" true
    (Exec.Chaos.server_fault (plan "hang@1") = None);
  let hook = Option.get (Exec.Chaos.server_fault (plan "accept@2,swrite@1")) in
  (* Each fault point keeps its own opportunity counter: interleaved
     reads and writes must not advance the accept count. *)
  Alcotest.(check bool) "accept 1 survives" false (hook `Accept);
  Alcotest.(check bool) "reads never fault without a sread term" false
    (hook `Read);
  Alcotest.(check bool) "first write drops" true (hook `Write);
  Alcotest.(check bool) "accept 2 drops" true (hook `Accept);
  Alcotest.(check bool) "accept 3 survives" false (hook `Accept);
  (* A fresh derivation (a restarted server) starts its counters over. *)
  let fresh = Option.get (Exec.Chaos.server_fault (plan "accept@2,swrite@1")) in
  Alcotest.(check bool) "fresh derivation restarts the counters" false
    (fresh `Accept)

let () =
  Alcotest.run "chaos"
    [
      ( "spec",
        [
          Alcotest.test_case "parse / to_string round-trip" `Quick
            test_parse_canonical_round_trip;
          Alcotest.test_case "whitespace tolerated" `Quick
            test_parse_tolerates_whitespace;
          Alcotest.test_case "malformed specs rejected" `Quick test_parse_errors;
          Alcotest.test_case "is_empty" `Quick test_is_empty;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "At exact, Rate seeded and pure" `Quick
            test_fires_determinism;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "worker fault derivation" `Quick
            test_worker_fault_hook;
          Alcotest.test_case "spawn and journal derivations" `Quick
            test_spawn_and_journal_hooks;
          Alcotest.test_case "server fault derivation" `Quick
            test_server_fault_hook;
        ] );
    ]
