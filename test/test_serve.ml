(** The campaign service daemon, end to end: SRV1 framing, admission
    control and backpressure, per-client quotas, request deadlines,
    durable SIGKILL+restart resume, graceful SIGTERM drain, and the
    chaos server fault points. The daemon under test is a re-execution
    of this very binary (OCaml 5 forbids fork after the first domain
    spawns), steered by the [TEST_SERVE_DAEMON] environment variable. *)

(* Workers are re-executions of this binary: the intercept must run
   before anything else, or a shard "worker" would start running the
   test suite instead. *)
let () = Exec.Shard.init ()

(* ------------------------------------------------------------------ *)
(* Daemon-mode intercept                                                *)

(* When [TEST_SERVE_DAEMON] is set, this process IS the daemon: parse
   the [k=v;...] config, serve until drained, exit 0. Must precede
   Alcotest. *)
let () =
  match Sys.getenv_opt "TEST_SERVE_DAEMON" with
  | None -> ()
  | Some conf ->
      let kv =
        List.filter_map
          (fun part ->
            match String.index_opt part '=' with
            | Some i ->
                Some
                  ( String.sub part 0 i,
                    String.sub part (i + 1) (String.length part - i - 1) )
            | None -> None)
          (String.split_on_char ';' conf)
      in
      let get k = List.assoc_opt k kv in
      let socket = Option.get (get "socket") in
      let state_dir = Option.get (get "state") in
      let cfg = Serve.Server.default_config ~socket ~state_dir in
      let cfg =
        {
          cfg with
          Serve.Server.queue_bound =
            (match get "queue" with Some v -> int_of_string v | None -> 8);
          quota = (match get "quota" with Some v -> int_of_string v | None -> 4);
          concurrent =
            (match get "concurrent" with Some v -> int_of_string v | None -> 1);
          store_budget_bytes =
            (match get "store_budget" with
            | Some v -> int_of_string v
            | None -> cfg.Serve.Server.store_budget_bytes);
          shards = Option.map int_of_string (get "shards");
          default_deadline_s = Option.map float_of_string (get "deadline");
          stall_timeout_s =
            (match get "stall" with Some v -> float_of_string v | None -> 10.);
          retry_after_s = 0.1;
          chaos =
            (match get "chaos" with
            | None -> None
            | Some spec -> (
                match Exec.Chaos.parse ~seed:42 spec with
                | Ok plan -> Some plan
                | Error e -> failwith e));
          metrics_path = get "metrics";
        }
      in
      Serve.Server.run cfg;
      exit 0

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "serve_test_%d_%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o755;
    d

type daemon = { pid : int; socket : string; state : string }

(* Spawn a daemon (a re-execution of this binary) and block until its
   socket accepts. *)
let spawn ~socket ~state args =
  let conf =
    String.concat ";" ([ "socket=" ^ socket; "state=" ^ state ] @ args)
  in
  let env =
    Array.append (Unix.environment ()) [| "TEST_SERVE_DAEMON=" ^ conf |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stderr Unix.stderr
  in
  let deadline = Obs.Clock.now () +. 10. in
  let rec wait () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        if Obs.Clock.now () > deadline then
          Alcotest.fail "daemon did not come up within 10s";
        Unix.sleepf 0.05;
        wait ()
  in
  wait ();
  { pid; socket; state }

let start_daemon ?(args = []) () =
  let state = fresh_dir () in
  spawn ~socket:(Filename.concat state "d.sock") ~state args

(* Restart on the same socket and state dir — the SIGKILL-recovery
   path. *)
let restart_daemon ?(args = []) (d : daemon) =
  spawn ~socket:d.socket ~state:d.state args

let stop_daemon (d : daemon) =
  (match Serve.Client.drain ~socket:d.socket with
  | Ok _ -> ()
  | Error _ -> ());
  match Unix.waitpid [] d.pid with
  | _, Unix.WEXITED 0 -> ()
  | _, status ->
      let s =
        match status with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
      in
      Alcotest.failf "daemon did not drain cleanly: %s" s

(* A raw protocol session, for tests that need to see individual frames
   (rejections, progress, failure reasons) rather than the client
   library's absorbed view. *)
type session = { fd : Unix.file_descr; buf : Serve.Wire.Frame.buf }

let connect (d : daemon) =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX d.socket);
  let s = { fd; buf = Serve.Wire.Frame.create () } in
  Serve.Wire.Frame.write fd
    (Serve.Wire.Hello { proto = Serve.Wire.proto_version; client = "test" });
  s

let recv s =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Serve.Wire.Frame.decode s.buf with
    | `Frame (v : Serve.Wire.response) -> v
    | `Corrupt -> Alcotest.fail "corrupt frame from server"
    | `Need_more -> (
        match Unix.read s.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Alcotest.fail "server closed the connection"
        | n ->
            Serve.Wire.Frame.feed s.buf chunk n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let expect_welcome s =
  match recv s with
  | Serve.Wire.Welcome _ -> ()
  | _ -> Alcotest.fail "expected Welcome"

let disconnect s = try Unix.close s.fd with Unix.Unix_error _ -> ()

let submit s ?deadline_s spec =
  Serve.Wire.Frame.write s.fd (Serve.Wire.Submit { spec; deadline_s })

(* Grid specs. [quick] is one scenario (two simulations); [slow] spans
   enough cells that tests can interrupt it mid-flight. *)
let quick_spec =
  {
    Serve.Wire.seed = 42;
    faults = [ "stuck=3:ca_accel_req" ];
    scenarios = [ 1 ];
    window = None;
    retries = 0;
  }

let slow_spec =
  {
    Serve.Wire.seed = 43;
    faults = [ "stuck=3:ca_accel_req"; "delay=150:accel_cmd" ];
    scenarios = [ 1; 2; 3; 4; 5 ];
    window = None;
    retries = 0;
  }

(* The CSV the batch path produces for a wire spec — the byte-identity
   oracle, computed in-process. *)
let batch_csv (spec : Serve.Wire.spec) =
  let g =
    {
      Scenarios.Campaign.seed = spec.Serve.Wire.seed;
      faults = List.map Inject.Spec.parse_exn spec.Serve.Wire.faults;
      grid_scenarios = List.map Scenarios.Defs.get spec.Serve.Wire.scenarios;
    }
  in
  Scenarios.Export.campaign_csv
    (Scenarios.Campaign.run ?window:spec.Serve.Wire.window g)

let counter_in json name =
  (* Pull ["name":N] out of an obs/1 snapshot without a JSON parser
     dependency in this suite. *)
  let needle = Printf.sprintf "%S:" name in
  match Str.search_forward (Str.regexp_string needle) json 0 with
  | exception Not_found -> Alcotest.failf "counter %s missing from stats" name
  | i ->
      let start = i + String.length needle in
      let stop = ref start in
      while
        !stop < String.length json
        && (match json.[!stop] with '0' .. '9' -> true | _ -> false)
      do
        incr stop
      done;
      int_of_string (String.sub json start (!stop - start))

let stats_counter d name =
  match Serve.Client.stats ~socket:d.socket with
  | Ok json -> counter_in json name
  | Error e -> Alcotest.failf "stats: %s" e

(* ------------------------------------------------------------------ *)
(* Wire codec                                                           *)

let feed_string buf s =
  Serve.Wire.Frame.feed buf (Bytes.of_string s) (String.length s)

let test_wire_roundtrip () =
  let buf = Serve.Wire.Frame.create () in
  let rq =
    Serve.Wire.Submit { spec = quick_spec; deadline_s = Some 5. }
  in
  feed_string buf (Serve.Wire.Frame.encode rq);
  (match Serve.Wire.Frame.decode buf with
  | `Frame (Serve.Wire.Submit { spec; deadline_s = Some d }) ->
      Alcotest.(check bool) "spec survives" true (spec = quick_spec);
      Alcotest.(check (float 0.)) "deadline survives" 5. d
  | _ -> Alcotest.fail "expected the submit frame back");
  match Serve.Wire.Frame.decode buf with
  | `Need_more -> ()
  | _ -> Alcotest.fail "buffer must be empty after decode"

let test_wire_torn_and_corrupt () =
  let frame = Serve.Wire.Frame.encode Serve.Wire.Stats in
  (* Torn: any strict prefix is `Need_more, never `Corrupt or a bogus
     frame. *)
  for cut = 0 to String.length frame - 1 do
    let buf = Serve.Wire.Frame.create () in
    feed_string buf (String.sub frame 0 cut);
    match Serve.Wire.Frame.decode buf with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.failf "prefix of %d bytes decoded" cut
    | `Corrupt -> Alcotest.failf "prefix of %d bytes declared corrupt" cut
  done;
  (* A flipped payload bit must be caught by the CRC. *)
  let flipped = Bytes.of_string frame in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  let buf = Serve.Wire.Frame.create () in
  feed_string buf (Bytes.to_string flipped);
  match Serve.Wire.Frame.decode buf with
  | `Corrupt -> ()
  | `Frame _ -> Alcotest.fail "bit flip decoded as a frame"
  | `Need_more -> Alcotest.fail "bit flip hidden as Need_more"

let test_wire_closure_free () =
  match Serve.Wire.Frame.encode (fun x -> x + 1) with
  | (_ : string) -> Alcotest.fail "closures must not serialize"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Round trip, dedup, store                                             *)

let test_roundtrip_and_store () =
  let d = start_daemon () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let expected = batch_csv quick_spec in
  (match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; durable; _ } ->
      Alcotest.(check string) "daemon CSV = batch CSV" expected csv;
      Alcotest.(check bool) "durable" true durable
  | Error e -> Alcotest.failf "submit: %s" e);
  (* Second submission of the same spec is a store hit: instant, same
     bytes, ticket 0. *)
  (match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; ticket; _ } ->
      Alcotest.(check string) "store hit returns the same bytes" expected csv;
      Alcotest.(check int) "store hits are ticketless" 0 ticket
  | Error e -> Alcotest.failf "store-hit submit: %s" e);
  Alcotest.(check int) "one store hit counted" 1
    (stats_counter d "serve.store_hits")

(* ------------------------------------------------------------------ *)
(* Admission control                                                    *)

let test_backpressure_queue_full () =
  let d = start_daemon ~args:[ "queue=1" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let s1 = connect d in
  Fun.protect ~finally:(fun () -> disconnect s1) @@ fun () ->
  expect_welcome s1;
  submit s1 slow_spec;
  (match recv s1 with
  | Serve.Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "first submission must be admitted");
  (* The queue bound counts queued + running; a second distinct spec
     must bounce with the retry-after hint, not buffer. *)
  let s2 = connect d in
  Fun.protect ~finally:(fun () -> disconnect s2) @@ fun () ->
  expect_welcome s2;
  submit s2 quick_spec;
  (match recv s2 with
  | Serve.Wire.Rejected
      { reason = Serve.Wire.Queue_full; retryable; retry_after_s } ->
      Alcotest.(check bool) "retry-after hint present" true (retry_after_s > 0.);
      Alcotest.(check bool) "queue-full is typed retryable" true retryable
  | r ->
      Alcotest.failf "expected Queue_full, got %s"
        (match r with
        | Serve.Wire.Accepted _ -> "Accepted"
        | Serve.Wire.Result _ -> "Result"
        | _ -> "another frame"));
  (* The in-quota, in-bound submission still completes: cancel the
     hog, then the quick spec has the queue to itself. *)
  (match recv s1 with
  | Serve.Wire.Accepted _ | Serve.Wire.Progress _ | Serve.Wire.Result _ -> ()
  | Serve.Wire.Failed { reason; _ } -> Alcotest.failf "hog failed: %s" reason
  | _ -> ());
  disconnect s1;
  (* s1's disconnect orphans — cancels — the slow campaign. *)
  match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "queued-out client completes after the burst"
        (batch_csv quick_spec) csv;
      Alcotest.(check bool) "rejection counted" true
        (stats_counter d "serve.rejections_queue_full" >= 1)
  | Error e -> Alcotest.failf "post-burst submit: %s" e

let test_quota () =
  let d = start_daemon ~args:[ "quota=1"; "queue=8" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let s = connect d in
  Fun.protect ~finally:(fun () -> disconnect s) @@ fun () ->
  expect_welcome s;
  submit s slow_spec;
  (match recv s with
  | Serve.Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "first submission must be admitted");
  submit s quick_spec;
  let rec wait_reject () =
    match recv s with
    | Serve.Wire.Rejected { reason = Serve.Wire.Over_quota; _ } -> ()
    | Serve.Wire.Progress _ -> wait_reject ()
    | Serve.Wire.Accepted _ -> Alcotest.fail "quota must bound one client"
    | _ -> Alcotest.fail "expected Over_quota"
  in
  wait_reject ();
  Alcotest.(check bool) "quota rejection counted" true
    (stats_counter d "serve.rejections_quota" >= 1)

let test_bad_spec () =
  let d = start_daemon () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let s = connect d in
  Fun.protect ~finally:(fun () -> disconnect s) @@ fun () ->
  expect_welcome s;
  submit s { quick_spec with Serve.Wire.scenarios = [ 999 ] };
  (match recv s with
  | Serve.Wire.Rejected { reason = Serve.Wire.Bad_spec e; _ } ->
      Alcotest.(check bool) "names the scenario" true
        (Str.string_match (Str.regexp ".*999") e 0)
  | _ -> Alcotest.fail "unknown scenario must be Bad_spec");
  submit s { quick_spec with Serve.Wire.faults = [ "bogus!" ] };
  match recv s with
  | Serve.Wire.Rejected { reason = Serve.Wire.Bad_spec _; _ } -> ()
  | _ -> Alcotest.fail "unparsable fault must be Bad_spec"

(* ------------------------------------------------------------------ *)
(* Deadlines                                                            *)

let test_deadline_kills_without_stalling_others () =
  let d = start_daemon () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  (* A slowloris-ish client: submits a long campaign with a short
     deadline and then never reads another frame. *)
  let s = connect d in
  expect_welcome s;
  submit s ~deadline_s:0.5 slow_spec;
  (match recv s with
  | Serve.Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "slow submission must be admitted");
  (* A healthy client behind it must still complete promptly — the
     deadline reclaims the cells instead of letting the stalled request
     pin the executor for the full grid. *)
  (match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "healthy client unaffected" (batch_csv quick_spec)
        csv
  | Error e -> Alcotest.failf "healthy submit: %s" e);
  let rec wait_kill () =
    match recv s with
    | Serve.Wire.Failed { reason; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "reason %S mentions the deadline" reason)
          true
          (Str.string_match (Str.regexp ".*deadline") reason 0)
    | Serve.Wire.Progress _ | Serve.Wire.Accepted _ -> wait_kill ()
    | _ -> Alcotest.fail "expected the deadline Failed"
  in
  wait_kill ();
  disconnect s;
  Alcotest.(check bool) "deadline kill counted" true
    (stats_counter d "serve.deadline_kills" >= 1)

(* ------------------------------------------------------------------ *)
(* Durability                                                           *)

let test_sigkill_restart_resume_identical () =
  let d = start_daemon () in
  let s = connect d in
  expect_welcome s;
  submit s { slow_spec with Serve.Wire.seed = 42 };
  (match recv s with
  | Serve.Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "submission must be admitted");
  (* Wait for real progress so the kill lands mid-campaign, with some
     cells journaled and some not. *)
  let rec wait_progress () =
    match recv s with
    | Serve.Wire.Progress { completed; _ } when completed >= 2 -> ()
    | Serve.Wire.Progress _ | Serve.Wire.Accepted _ -> wait_progress ()
    | Serve.Wire.Result _ -> Alcotest.fail "campaign finished too fast to kill"
    | _ -> Alcotest.fail "unexpected frame while waiting for progress"
  in
  wait_progress ();
  Unix.kill d.pid Sys.sigkill;
  ignore (Unix.waitpid [] d.pid);
  disconnect s;
  (* Restart on the same state dir: the admission journal still holds
     the [Pending], the cell journal the settled cells. Resubmitting
     the same spec attaches to the recovered request (or hits the
     store) and the bytes must equal an uninterrupted batch run. *)
  let d = restart_daemon d in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  (match
     Serve.Client.submit_and_wait ~socket:d.socket
       { slow_spec with Serve.Wire.seed = 42 }
   with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "resumed CSV byte-identical"
        (batch_csv { slow_spec with Serve.Wire.seed = 42 })
        csv
  | Error e -> Alcotest.failf "resubmit after restart: %s" e);
  Alcotest.(check bool) "recovery counted" true
    (stats_counter d "serve.recovered" >= 1)

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                       *)

let test_sigterm_drain_under_load () =
  let d = start_daemon () in
  let s = connect d in
  Fun.protect ~finally:(fun () -> disconnect s) @@ fun () ->
  expect_welcome s;
  submit s slow_spec;
  (match recv s with
  | Serve.Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "submission must be admitted");
  Unix.kill d.pid Sys.sigterm;
  (* Every admitted request settles or checkpoints before exit: this
     one is mid-run, so its waiters hear a checkpoint Failed (unless it
     squeaked through to a Result — also a legal drain). *)
  let rec wait_settle () =
    match recv s with
    | Serve.Wire.Failed { reason; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "reason %S mentions the checkpoint" reason)
          true
          (Str.string_match (Str.regexp ".*checkpoint") reason 0)
    | Serve.Wire.Result _ -> ()
    | Serve.Wire.Progress _ -> wait_settle ()
    | _ -> Alcotest.fail "expected the drain settlement"
  in
  wait_settle ();
  (match Unix.waitpid [] d.pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "drained daemon must exit 0");
  (* New admissions during/after drain: connection refused or Draining
     rejection — either way the socket is gone now. *)
  match Serve.Client.submit_and_wait ~attempts:1 ~patience_s:2.
          ~socket:d.socket quick_spec
  with
  | Ok _ -> Alcotest.fail "drained daemon must not serve"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Concurrent lanes                                                     *)

(* Distinct 1-cell and 3-cell specs for interleaving tests; distinct
   seeds/faults keep the digests (and so the executions) separate. *)
let quick2_spec =
  {
    Serve.Wire.seed = 46;
    faults = [ "delay=150:accel_cmd" ];
    scenarios = [ 3 ];
    window = None;
    retries = 0;
  }

let medium_spec =
  {
    Serve.Wire.seed = 44;
    faults = [ "stuck=3:ca_accel_req" ];
    scenarios = [ 1; 2; 3 ];
    window = None;
    retries = 0;
  }

let rec wait_progress ?(at_least = 1) s =
  match recv s with
  | Serve.Wire.Progress { completed; _ } when completed >= at_least -> ()
  | Serve.Wire.Progress _ | Serve.Wire.Accepted _ -> wait_progress ~at_least s
  | Serve.Wire.Result _ -> Alcotest.fail "campaign finished too fast"
  | _ -> Alcotest.fail "unexpected frame while waiting for progress"

let rec wait_result s =
  match recv s with
  | Serve.Wire.Result { csv; _ } -> csv
  | Serve.Wire.Progress _ | Serve.Wire.Accepted _ -> wait_result s
  | Serve.Wire.Failed { reason; _ } -> Alcotest.failf "campaign failed: %s" reason
  | _ -> Alcotest.fail "unexpected frame while waiting for the result"

let expect_accept s =
  match recv s with
  | Serve.Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "submission must be admitted"

(* The acceptance criterion: with two lanes, a 1-cell probe submitted
   behind a long-running grid completes while the long grid is still
   mid-flight — no head-of-line blocking — and both CSVs stay
   byte-identical to their batch equivalents. *)
let test_small_jumps_large () =
  let d = start_daemon ~args:[ "concurrent=2" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let s = connect d in
  Fun.protect ~finally:(fun () -> disconnect s) @@ fun () ->
  expect_welcome s;
  submit s slow_spec;
  expect_accept s;
  (* Ensure the long grid actually occupies its lane before the probe
     arrives. *)
  wait_progress s;
  (match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "probe CSV byte-identical" (batch_csv quick_spec)
        csv
  | Error e -> Alcotest.failf "probe submit: %s" e);
  Alcotest.(check int) "probe completed while the long grid still runs" 1
    (stats_counter d "serve.requests_completed");
  Alcotest.(check string) "long CSV byte-identical" (batch_csv slow_spec)
    (wait_result s)

let test_interleaved_identical () =
  let d = start_daemon ~args:[ "concurrent=2" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let s1 = connect d in
  Fun.protect ~finally:(fun () -> disconnect s1) @@ fun () ->
  let s2 = connect d in
  Fun.protect ~finally:(fun () -> disconnect s2) @@ fun () ->
  expect_welcome s1;
  expect_welcome s2;
  submit s1 quick_spec;
  submit s2 quick2_spec;
  expect_accept s1;
  expect_accept s2;
  Alcotest.(check string) "first interleaved CSV byte-identical"
    (batch_csv quick_spec) (wait_result s1);
  Alcotest.(check string) "second interleaved CSV byte-identical"
    (batch_csv quick2_spec) (wait_result s2)

(* Aborting one concurrent request (here: by orphaning — its only
   client disconnects) must leave the neighbour lane's fleet lease
   untouched: the survivor completes byte-identical. [shards=2] with
   two lanes exercises the labelled per-lane fleet split (one worker
   process each). *)
let test_abort_leaves_other () =
  let d = start_daemon ~args:[ "concurrent=2"; "shards=2" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let s1 = connect d in
  expect_welcome s1;
  submit s1 slow_spec;
  expect_accept s1;
  wait_progress s1;
  let s2 = connect d in
  Fun.protect ~finally:(fun () -> disconnect s2) @@ fun () ->
  expect_welcome s2;
  submit s2 medium_spec;
  expect_accept s2;
  (* Orphan-kill the long grid mid-run; the survivor's workers belong
     to the other lane's fleet and must not notice. *)
  disconnect s1;
  Alcotest.(check string) "survivor CSV byte-identical"
    (batch_csv medium_spec) (wait_result s2);
  Alcotest.(check bool) "orphaning counted" true
    (stats_counter d "serve.orphaned" >= 1)

(* SIGKILL with two campaigns mid-flight: restart recovers BOTH from
   the admission journal, resumes each from its cell journal, and the
   resubmitted results stay byte-identical. *)
let test_sigkill_restart_resumes_both () =
  let d = start_daemon ~args:[ "concurrent=2" ] () in
  let s1 = connect d in
  expect_welcome s1;
  submit s1 slow_spec;
  expect_accept s1;
  let s2 = connect d in
  expect_welcome s2;
  let other = { slow_spec with Serve.Wire.seed = 45; scenarios = [ 1; 2; 3 ] } in
  submit s2 other;
  expect_accept s2;
  wait_progress ~at_least:2 s1;
  wait_progress ~at_least:2 s2;
  Unix.kill d.pid Sys.sigkill;
  ignore (Unix.waitpid [] d.pid);
  disconnect s1;
  disconnect s2;
  let d = restart_daemon ~args:[ "concurrent=2" ] d in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  (match Serve.Client.submit_and_wait ~socket:d.socket slow_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "first resumed CSV byte-identical"
        (batch_csv slow_spec) csv
  | Error e -> Alcotest.failf "first resubmit after restart: %s" e);
  (match Serve.Client.submit_and_wait ~socket:d.socket other with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "second resumed CSV byte-identical"
        (batch_csv other) csv
  | Error e -> Alcotest.failf "second resubmit after restart: %s" e);
  Alcotest.(check bool) "both recoveries counted" true
    (stats_counter d "serve.recovered" >= 2)

(* ------------------------------------------------------------------ *)
(* Result-store GC                                                      *)

(* A one-byte budget evicts every stored result immediately; an evicted
   digest must fall back to re-execution (incremental, via its cell
   journal) and still serve the same bytes. *)
let test_store_eviction () =
  let d = start_daemon ~args:[ "store_budget=1" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let expected = batch_csv quick_spec in
  (match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "first run byte-identical" expected csv
  | Error e -> Alcotest.failf "first submit: %s" e);
  Alcotest.(check bool) "eviction counted" true
    (stats_counter d "serve.store_evictions" >= 1);
  match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "evicted digest re-executes to the same bytes"
        expected csv
  | Error e -> Alcotest.failf "post-eviction submit: %s" e

(* ------------------------------------------------------------------ *)
(* Chaos server fault points                                            *)

let test_chaos_server_faults_absorbed () =
  (* Drop the first accept, the second read and the third write: the
     client library must reconnect/resubmit through all three and still
     produce byte-identical results. *)
  let d = start_daemon ~args:[ "chaos=accept@1,sread@2,swrite@3" ] () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  (match Serve.Client.submit_and_wait ~socket:d.socket quick_spec with
  | Ok { Serve.Client.csv; _ } ->
      Alcotest.(check string) "CSV byte-identical under server chaos"
        (batch_csv quick_spec) csv
  | Error e -> Alcotest.failf "submit under chaos: %s" e);
  Alcotest.(check bool) "chaos drops counted" true
    (stats_counter d "serve.chaos_drops" >= 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "torn and corrupt frames" `Quick
            test_wire_torn_and_corrupt;
          Alcotest.test_case "closure-free payloads" `Quick
            test_wire_closure_free;
        ] );
      ( "service",
        [
          Alcotest.test_case "round trip, dedup, result store" `Slow
            test_roundtrip_and_store;
          Alcotest.test_case "bad specs rejected at admission" `Slow
            test_bad_spec;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue bound rejects with backpressure" `Slow
            test_backpressure_queue_full;
          Alcotest.test_case "per-client quota" `Slow test_quota;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "deadline kill does not stall others" `Slow
            test_deadline_kills_without_stalling_others;
        ] );
      ( "durability",
        [
          Alcotest.test_case "SIGKILL, restart, resume byte-identical" `Slow
            test_sigkill_restart_resume_identical;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM drain under load exits 0" `Slow
            test_sigterm_drain_under_load;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "small grid jumps a long one" `Slow
            test_small_jumps_large;
          Alcotest.test_case "interleaved campaigns byte-identical" `Slow
            test_interleaved_identical;
          Alcotest.test_case "abort of one lane leaves the other's fleet"
            `Slow test_abort_leaves_other;
          Alcotest.test_case "SIGKILL, restart resumes both campaigns" `Slow
            test_sigkill_restart_resumes_both;
        ] );
      ( "store",
        [
          Alcotest.test_case "size budget evicts; evicted digests re-execute"
            `Slow test_store_eviction;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "server fault points absorbed" `Slow
            test_chaos_server_faults_absorbed;
        ] );
    ]
