(** Unit and property tests for the temporal logic substrate. *)

open Tl

let state bindings = State.of_list bindings
let b v = Value.Bool v
let f v = Value.Float v

let bool_trace ~dt var values =
  Trace.make ~dt (List.map (fun x -> state [ (var, b x) ]) values)

(* ------------------------------------------------------------------ *)
(* Values and states                                                    *)

let test_value_equal () =
  Alcotest.(check bool) "int/float coercion" true (Value.equal (Value.Int 1) (f 1.));
  Alcotest.(check bool) "sym equality" true (Value.equal (Value.Sym "A") (Value.Sym "A"));
  Alcotest.(check bool) "bool vs int" false (Value.equal (b true) (Value.Int 1));
  Alcotest.(check bool) "compare_num" true (Value.compare_num (Value.Int 2) (f 2.5) < 0)

let test_value_errors () =
  Alcotest.check_raises "to_float of sym" (Value.Type_error "expected a number, got 'X'")
    (fun () -> ignore (Value.to_float (Value.Sym "X")));
  Alcotest.check_raises "unbound variable" (State.Unbound "missing") (fun () ->
      ignore (State.get State.empty "missing"))

let test_state_ops () =
  let s = state [ ("a", b true); ("x", f 2.) ] in
  Alcotest.(check bool) "bool get" true (State.bool s "a");
  Alcotest.(check (float 0.)) "float get" 2. (State.float s "x");
  let s' = State.set "x" (f 3.) s in
  Alcotest.(check (float 0.)) "update" 3. (State.float s' "x");
  Alcotest.(check (float 0.)) "immutability" 2. (State.float s "x");
  Alcotest.(check bool) "equal" false (State.equal s s');
  Alcotest.(check int) "compare consistent" 0 (State.compare s s)

(* ------------------------------------------------------------------ *)
(* Terms                                                                *)

let test_term_eval () =
  let s = state [ ("x", f 2.); ("y", f (-3.)) ] in
  let e t = Value.to_float (Term.eval s t) in
  Alcotest.(check (float 1e-9)) "add" (-1.) (e (Term.Add (Term.var "x", Term.var "y")));
  Alcotest.(check (float 1e-9)) "abs" 3. (e (Term.Abs (Term.var "y")));
  Alcotest.(check (float 1e-9)) "mul" (-6.) (e (Term.Mul (Term.var "x", Term.var "y")));
  Alcotest.(check (float 1e-9)) "min" (-3.) (e (Term.Min (Term.var "x", Term.var "y")));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ]
    (Term.vars (Term.Sub (Term.var "x", Term.var "y")))

(* ------------------------------------------------------------------ *)
(* Formula structure                                                    *)

let test_smart_constructors () =
  Alcotest.(check bool) "and true" true (Formula.and_ Formula.tt (Formula.bvar "a") = Formula.bvar "a");
  Alcotest.(check bool) "or false" true (Formula.or_ Formula.ff (Formula.bvar "a") = Formula.bvar "a");
  Alcotest.(check bool) "not not" true (Formula.not_ (Formula.not_ (Formula.bvar "a")) = Formula.bvar "a");
  Alcotest.(check bool) "conj []" true (Formula.conj [] = Formula.tt);
  Alcotest.(check bool) "disj []" true (Formula.disj [] = Formula.ff)

let test_vars_and_refs () =
  let phi =
    Formula.entails
      (Formula.prev (Formula.bvar "p"))
      (Formula.and_ (Formula.bvar "q") (Formula.once_within 1.0 (Formula.bvar "r")))
  in
  Alcotest.(check (list string)) "vars" [ "p"; "q"; "r" ] (Formula.vars phi);
  (* temporal references are taken of the invariant body: the top-level □ of
     an entailment would otherwise put everything in a Future context *)
  let body = Option.get (Formula.invariant_body phi) in
  let refs = Formula.var_refs body in
  Alcotest.(check bool) "p past" true (List.mem ("p", Formula.Past) refs);
  Alcotest.(check bool) "q present" true (List.mem ("q", Formula.Present) refs);
  Alcotest.(check bool) "r past" true (List.mem ("r", Formula.Past) refs)

let test_future_detection () =
  Alcotest.(check bool) "eventually has future" true
    (Formula.has_future (Formula.eventually (Formula.bvar "a")));
  Alcotest.(check bool) "past only" false
    (Formula.has_future (Formula.prev (Formula.once (Formula.bvar "a"))));
  Alcotest.(check bool) "invariant body strips top always" true
    (Formula.invariant_body (Formula.always (Formula.bvar "a")) = Some (Formula.bvar "a"));
  Alcotest.(check bool) "nested future rejected" true
    (Formula.invariant_body (Formula.always (Formula.next (Formula.bvar "a"))) = None)

let test_rename_subst () =
  let phi = Formula.implies (Formula.bvar "a") (Formula.le (Term.var "x") (Term.float 1.)) in
  let phi' = Formula.rename (fun v -> if v = "x" then "y" else v) phi in
  Alcotest.(check (list string)) "renamed" [ "a"; "y" ] (Formula.vars phi');
  let psi = Formula.subst (Formula.bvar "a") (Formula.bvar "b") phi in
  Alcotest.(check (list string)) "substituted" [ "b"; "x" ] (Formula.vars psi)

let test_pretty () =
  let phi = Formula.entails (Formula.prev (Formula.bvar "A")) (Formula.bvar "B") in
  Alcotest.(check string) "entailment rendering" "●A ⇒ B" (Formula.to_string phi)

(* ------------------------------------------------------------------ *)
(* Trace and reference semantics                                        *)

let test_duration_to_states () =
  Alcotest.(check int) "exact" 500 (Trace.duration_to_states ~dt:0.001 0.5);
  Alcotest.(check int) "round up" 3 (Trace.duration_to_states ~dt:1.0 2.5);
  Alcotest.(check int) "minimum one" 1 (Trace.duration_to_states ~dt:1.0 0.)

let test_prev_semantics () =
  let tr = bool_trace ~dt:1.0 "p" [ true; false; true ] in
  let prev_p = Formula.prev (Formula.bvar "p") in
  Alcotest.(check bool) "prev at 0 is false" false (Eval.eval tr 0 prev_p);
  Alcotest.(check bool) "prev at 1" true (Eval.eval tr 1 prev_p);
  Alcotest.(check bool) "prev at 2" false (Eval.eval tr 2 prev_p)

let test_once_hist () =
  let tr = bool_trace ~dt:1.0 "p" [ false; true; false; false ] in
  let once_p = Formula.once (Formula.bvar "p") in
  let hist_p = Formula.hist (Formula.bvar "p") in
  Alcotest.(check bool) "once strictly previous at 1" false (Eval.eval tr 1 once_p);
  Alcotest.(check bool) "once at 2" true (Eval.eval tr 2 once_p);
  Alcotest.(check bool) "hist vacuous at 0" true (Eval.eval tr 0 hist_p);
  Alcotest.(check bool) "hist at 2 false" false (Eval.eval tr 2 hist_p)

let test_prev_for () =
  let tr = bool_trace ~dt:1.0 "p" [ true; true; true; false; true ] in
  let pf = Formula.prev_for 2.0 (Formula.bvar "p") in
  Alcotest.(check bool) "insufficient history" false (Eval.eval tr 1 pf);
  Alcotest.(check bool) "held 2 states" true (Eval.eval tr 2 pf);
  Alcotest.(check bool) "held at 3" true (Eval.eval tr 3 pf);
  Alcotest.(check bool) "broken at 4" false (Eval.eval tr 4 pf)

let test_once_within () =
  let tr = bool_trace ~dt:1.0 "p" [ false; true; false; false; false ] in
  let ow = Formula.once_within 2.0 (Formula.bvar "p") in
  Alcotest.(check bool) "at 0 no history" false (Eval.eval tr 0 ow);
  Alcotest.(check bool) "at 2 within window" true (Eval.eval tr 2 ow);
  Alcotest.(check bool) "at 3 still within" true (Eval.eval tr 3 ow);
  Alcotest.(check bool) "at 4 expired" false (Eval.eval tr 4 ow)

let test_rose () =
  let tr = bool_trace ~dt:1.0 "p" [ true; true; false; true ] in
  let r = Formula.rose (Formula.bvar "p") in
  Alcotest.(check bool) "no edge in initial state" false (Eval.eval tr 0 r);
  Alcotest.(check bool) "no edge when held" false (Eval.eval tr 1 r);
  Alcotest.(check bool) "edge at 3" true (Eval.eval tr 3 r)

let test_future_ops () =
  let tr = bool_trace ~dt:1.0 "p" [ false; false; true ] in
  Alcotest.(check bool) "eventually" true (Eval.eval tr 0 (Formula.eventually (Formula.bvar "p")));
  Alcotest.(check bool) "always false" false (Eval.eval tr 0 (Formula.always (Formula.bvar "p")));
  Alcotest.(check bool) "always suffix" true (Eval.eval tr 2 (Formula.always (Formula.bvar "p")));
  Alcotest.(check bool) "next at end" false (Eval.eval tr 2 (Formula.next (Formula.bvar "p")))

let test_initially () =
  let tr = bool_trace ~dt:1.0 "p" [ true; false; false ] in
  let phi = Formula.always (Formula.initially (Formula.bvar "p")) in
  Alcotest.(check bool) "constrains only state 0" true (Eval.holds tr phi);
  let tr2 = bool_trace ~dt:1.0 "p" [ false; true ] in
  Alcotest.(check bool) "violated initial state" false (Eval.holds tr2 phi)

let test_signal_extraction () =
  let tr =
    Trace.make ~dt:0.5
      [ state [ ("x", f 1.) ]; state [ ("x", f 2.) ]; state [ ("x", f 3.) ] ]
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "signal"
    [ (0., 1.); (0.5, 2.); (1.0, 3.) ]
    (Trace.signal tr "x")

(* ------------------------------------------------------------------ *)
(* Property tests: semantic laws of the reference evaluator             *)

let gen_formula vars =
  let open QCheck.Gen in
  let base = map (fun v -> Formula.bvar v) (oneofl vars) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then base
         else
           frequency
             [
               (2, base);
               (1, map Formula.not_ (self (n - 1)));
               (1, map2 (fun a b -> Formula.And (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Formula.Or (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Formula.Implies (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map Formula.prev (self (n - 1)));
               (1, map Formula.once (self (n - 1)));
               (1, map Formula.hist (self (n - 1)));
               (1, map Formula.rose (self (n - 1)));
               ( 1,
                 map2
                   (fun k f -> Formula.prev_for (float_of_int (1 + (k mod 3))) f)
                   small_nat (self (n - 1)) );
               ( 1,
                 map2
                   (fun k f -> Formula.once_within (float_of_int (1 + (k mod 3))) f)
                   small_nat (self (n - 1)) );
             ])

let vars3 = [ "p"; "q"; "r" ]

let gen_trace =
  let open QCheck.Gen in
  let gen_state =
    map
      (fun bits ->
        state (List.mapi (fun i v -> (v, b (List.nth bits i))) vars3))
      (list_repeat 3 QCheck.Gen.bool)
  in
  map (fun ss -> Trace.make ~dt:1.0 ss) (list_size (int_range 1 8) gen_state)

let arb_formula =
  QCheck.make ~print:(fun f -> Formula.to_string f) (gen_formula vars3)

let arb_trace =
  QCheck.make
    ~print:(fun tr ->
      String.concat ";"
        (List.rev
           (Trace.fold (fun acc s -> Fmt.str "%a" State.pp s :: acc) [] tr)))
    gen_trace

let prop_negation_duality =
  QCheck.Test.make ~name:"¬◆¬p ≡ ■p at every index" ~count:200
    (QCheck.pair arb_formula arb_trace)
    (fun (phi, tr) ->
      let lhs = Formula.not_ (Formula.once (Formula.not_ phi)) in
      let rhs = Formula.hist phi in
      List.for_all
        (fun i -> Eval.eval tr i lhs = Eval.eval tr i rhs)
        (List.init (Trace.length tr) Fun.id))

let prop_rose_definition =
  QCheck.Test.make ~name:"@p ≡ ●¬p ∧ p" ~count:200
    (QCheck.pair arb_formula arb_trace)
    (fun (phi, tr) ->
      let lhs = Formula.rose phi in
      let rhs = Formula.and_ (Formula.prev (Formula.not_ phi)) phi in
      List.for_all
        (fun i -> Eval.eval tr i lhs = Eval.eval tr i rhs)
        (List.init (Trace.length tr) Fun.id))

let prop_prev_for_one =
  QCheck.Test.make ~name:"●[<1state]p ≡ ●p" ~count:200
    (QCheck.pair arb_formula arb_trace)
    (fun (phi, tr) ->
      List.for_all
        (fun i ->
          Eval.eval tr i (Formula.prev_for 1.0 phi) = Eval.eval tr i (Formula.prev phi))
        (List.init (Trace.length tr) Fun.id))

let prop_entails_is_always_implies =
  QCheck.Test.make ~name:"P ⇒ Q holds iff P→Q at every state" ~count:200
    (QCheck.triple arb_formula arb_formula arb_trace)
    (fun (p, q, tr) ->
      Eval.holds tr (Formula.entails p q)
      = List.for_all
          (fun i -> Eval.eval tr i (Formula.implies p q))
          (List.init (Trace.length tr) Fun.id))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_negation_duality;
      prop_rose_definition;
      prop_prev_for_one;
      prop_entails_is_always_implies;
    ]

let () =
  Alcotest.run "tl"
    [
      ( "value-state",
        [
          Alcotest.test_case "value equality" `Quick test_value_equal;
          Alcotest.test_case "type errors" `Quick test_value_errors;
          Alcotest.test_case "state operations" `Quick test_state_ops;
        ] );
      ("term", [ Alcotest.test_case "arithmetic" `Quick test_term_eval ]);
      ( "formula",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "vars and temporal refs" `Quick test_vars_and_refs;
          Alcotest.test_case "future detection" `Quick test_future_detection;
          Alcotest.test_case "rename and subst" `Quick test_rename_subst;
          Alcotest.test_case "pretty printing" `Quick test_pretty;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "duration to states" `Quick test_duration_to_states;
          Alcotest.test_case "prev" `Quick test_prev_semantics;
          Alcotest.test_case "once and hist" `Quick test_once_hist;
          Alcotest.test_case "prev_for" `Quick test_prev_for;
          Alcotest.test_case "once_within" `Quick test_once_within;
          Alcotest.test_case "rose" `Quick test_rose;
          Alcotest.test_case "future operators" `Quick test_future_ops;
          Alcotest.test_case "initially" `Quick test_initially;
          Alcotest.test_case "signal extraction" `Quick test_signal_extraction;
        ] );
      ("laws", props);
    ]
