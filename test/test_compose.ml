(** Tests for the Ch. 3 framework: and-reductions, composability verdicts
    and witnesses, and run-time composability estimation. *)

open Tl

let v = Formula.bvar

(* ------------------------------------------------------------------ *)
(* Darimont's and-reduction conditions                                  *)

let test_table_3_1_reductions () =
  let open Compose.Examples.Table_3_1 in
  Alcotest.(check bool) "reduction 1 complete" true
    (Compose.Andred.complete (Compose.Andred.check ~parent:goal reduction_1));
  Alcotest.(check bool) "reduction 2 complete" true
    (Compose.Andred.complete (Compose.Andred.check ~parent:goal reduction_2))

let test_minimality_violation () =
  let open Compose.Examples.Table_3_1 in
  (* Adding a superfluous subgoal breaks minimality. *)
  let c = Compose.Andred.check ~parent:goal (reduction_2 @ [ g11 ]) in
  Alcotest.(check bool) "infers" true c.Compose.Andred.infers_parent;
  Alcotest.(check bool) "not minimal" false c.Compose.Andred.minimal

let test_consistency_violation () =
  let parent = Formula.always (v "A") in
  let c =
    Compose.Andred.check ~parent
      [ Formula.always (v "A"); Formula.always (Formula.not_ (v "A")) ]
  in
  Alcotest.(check bool) "inconsistent" false c.Compose.Andred.is_consistent

let test_triviality () =
  let parent = Formula.entails (v "A") (v "B") in
  let c = Compose.Andred.check ~parent [ parent ] in
  Alcotest.(check bool) "restatement is trivial" false c.Compose.Andred.nontrivial

let test_partial_completion () =
  let open Compose.Examples.Table_3_1 in
  Alcotest.(check bool) "partial completes" true
    (Compose.Andred.completes_with ~parent:goal ~subgoals:[ g21 ] g22);
  Alcotest.(check bool) "wrong completion" false
    (Compose.Andred.completes_with ~parent:goal ~subgoals:[ g21 ] g11)

(* ------------------------------------------------------------------ *)
(* Composability verdicts (§3.2–3.3)                                    *)

let verdict = Alcotest.of_pp (fun ppf x ->
    Fmt.string ppf (Compose.Composability.verdict_to_string x))

let test_fully_composable () =
  let open Compose.Examples.Stop_vehicle in
  Alcotest.check verdict "Eqs. 3.5-3.6" Compose.Composability.Fully_composable
    (Compose.Composability.analyze ~parent:goal fully_composable_subgoals)
      .Compose.Composability.verdict

let test_fully_composable_with_redundancy () =
  let open Compose.Examples.Stop_vehicle in
  Alcotest.(check bool) "Eqs. 3.12-3.13" true
    (Compose.Composability.fully_composable_with_redundancy ~parent:goal
       [ redundant_subgoals ])

let test_demon_emergence () =
  let open Compose.Examples.Stop_vehicle in
  let a =
    Compose.Composability.analyze ~parent:goal
      (detection_assumption :: realizable_subgoals)
  in
  Alcotest.check verdict "partially composable"
    Compose.Composability.Partially_composable a.Compose.Composability.verdict;
  Alcotest.(check bool) "demon witnesses exist" true
    (a.Compose.Composability.demon_witnesses <> []);
  (* Every demon witness satisfies the subgoals but violates the parent. *)
  List.iter
    (fun tr ->
      Alcotest.(check bool) "subgoals hold" true
        (List.for_all
           (fun g -> Kaos.Patterns.trace_sat tr (Compose.Andred.body g))
           (detection_assumption :: realizable_subgoals));
      Alcotest.(check bool) "parent fails" false
        (Kaos.Patterns.trace_sat tr (Compose.Andred.body goal)))
    a.Compose.Composability.demon_witnesses

let test_completed_decomposition () =
  let open Compose.Examples.Stop_vehicle in
  let a =
    Compose.Composability.analyze ~parent:goal
      ((detection_assumption :: realizable_subgoals) @ [ unrealizable_subgoal ])
  in
  Alcotest.check verdict "with X resolved" Compose.Composability.Fully_composable
    a.Compose.Composability.verdict

let test_restrictive_decomposition () =
  (* □¬ObjectInPath trivially satisfies the parent but forbids acceptable
     behaviour — restrictive. *)
  let open Compose.Examples.Stop_vehicle in
  let a =
    Compose.Composability.analyze ~parent:goal
      [ Formula.always (Formula.not_ object_in_path) ]
  in
  Alcotest.check verdict "restrictive" Compose.Composability.Restrictive
    a.Compose.Composability.verdict;
  Alcotest.(check bool) "restriction witnesses" true
    (a.Compose.Composability.restriction_witnesses <> [])

let test_composability_measure () =
  let open Compose.Examples.Stop_vehicle in
  let full = Compose.Composability.composability ~parent:goal [ fully_composable_subgoals ] in
  Alcotest.(check (float 1e-9)) "fully composable => 1.0" 1.0 full;
  let partial =
    Compose.Composability.composability ~parent:goal
      [ detection_assumption :: realizable_subgoals ]
  in
  Alcotest.(check bool) "partial < 1.0" true (partial < 1.0)

let test_table_3_2_emergence () =
  let open Compose.Examples.Table_3_2 in
  (* The achievable weakening of G1_1 under the hidden dependency leaves a
     demon (A ∧ F states); adding the missing subgoal □¬F removes it. *)
  let broken = Compose.Composability.analyze ~parent:goal achievable_reduction in
  Alcotest.(check bool) "X1 unresolved: demon witnesses" true
    (broken.Compose.Composability.demon_witnesses <> []);
  let repaired =
    Compose.Composability.analyze ~parent:goal (achievable_reduction @ [ missing_subgoal ])
  in
  Alcotest.(check bool) "X1 resolved: no demon" true
    (repaired.Compose.Composability.demon_witnesses = [])

(* ------------------------------------------------------------------ *)
(* Run-time estimation (§3.4)                                           *)

let iv t =
  { Rtmon.Violation.start_index = 0; length = 1; start_time = t; duration = 0.01 }

let test_runtime_estimate () =
  let r1 =
    Rtmon.Report.classify ~window:0.1 ~goal:("G", "V", [ iv 1.0 ])
      ~subgoals:[ ("S", "A", [ iv 1.02 ]) ]
      ()
  in
  let r2 =
    Rtmon.Report.classify ~window:0.1 ~goal:("G", "V", [ iv 3.0 ]) ~subgoals:[]
      ()
  in
  let est = Compose.Runtime.of_reports [ r1; r2 ] in
  Alcotest.(check int) "scenarios" 2 est.Compose.Runtime.scenarios;
  Alcotest.(check int) "hits" 1 est.Compose.Runtime.hits;
  Alcotest.(check int) "false negatives" 1 est.Compose.Runtime.false_negatives;
  Alcotest.(check bool) "demon evidence" true (Compose.Runtime.demon_evidence est);
  Alcotest.(check (float 1e-9)) "coverage" 0.5 (Compose.Runtime.coverage est)

let test_runtime_no_evidence () =
  let est = Compose.Runtime.of_reports [] in
  Alcotest.(check bool) "no demon evidence" false (Compose.Runtime.demon_evidence est);
  Alcotest.(check (float 1e-9)) "vacuous coverage" 1.0 (Compose.Runtime.coverage est)

(* ------------------------------------------------------------------ *)
(* Property: fully composable verdicts have no witnesses; analyze is
   consistent with the measure. *)

let gen_prop_formula vars =
  let open QCheck.Gen in
  let base = map (fun v -> Formula.bvar v) (oneofl vars) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then base
         else
           frequency
             [
               (3, base);
               (1, map Formula.not_ (self (n - 1)));
               (1, map2 Formula.and_ (self (n / 2)) (self (n / 2)));
               (1, map2 Formula.or_ (self (n / 2)) (self (n / 2)));
             ])

let prop_self_decomposition_not_emergent =
  (* Any goal decomposed as { itself } has no demon witnesses. *)
  QCheck.Test.make ~name:"G decomposed by {G} has no demon" ~count:100
    (QCheck.make (gen_prop_formula [ "A"; "B" ]))
    (fun body ->
      let g = Formula.always body in
      let a = Compose.Composability.analyze ~parent:g [ g ] in
      a.Compose.Composability.demon_witnesses = []
      && a.Compose.Composability.restriction_witnesses = [])

let () =
  Alcotest.run "compose"
    [
      ( "andred",
        [
          Alcotest.test_case "Table 3.1 reductions" `Quick test_table_3_1_reductions;
          Alcotest.test_case "minimality" `Quick test_minimality_violation;
          Alcotest.test_case "consistency" `Quick test_consistency_violation;
          Alcotest.test_case "triviality" `Quick test_triviality;
          Alcotest.test_case "partial completion" `Quick test_partial_completion;
        ] );
      ( "composability",
        [
          Alcotest.test_case "fully composable" `Quick test_fully_composable;
          Alcotest.test_case "with redundancy" `Quick test_fully_composable_with_redundancy;
          Alcotest.test_case "demon emergence" `Quick test_demon_emergence;
          Alcotest.test_case "completed decomposition" `Quick test_completed_decomposition;
          Alcotest.test_case "restrictive" `Quick test_restrictive_decomposition;
          Alcotest.test_case "composability measure" `Quick test_composability_measure;
          Alcotest.test_case "Table 3.2 emergence" `Quick test_table_3_2_emergence;
          QCheck_alcotest.to_alcotest prop_self_decomposition_not_emergent;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "estimate" `Quick test_runtime_estimate;
          Alcotest.test_case "no evidence" `Quick test_runtime_no_evidence;
        ] );
    ]
