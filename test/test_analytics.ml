(** The streaming journal miner: order-independent determinism
    (live = journaled = any permutation, bit-for-bit), constant-memory
    footprint under growing input, torn-tail tolerance, and pinned
    goldens for the seed-42 smoke grid (the same grid CI mines). *)

module A = Analytics.Analyze

let tmp name =
  let path = Filename.temp_file "analytics_test_" ("_" ^ name ^ ".jnl") in
  Sys.remove path;
  path

let with_path name f =
  let path = tmp name in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Sketches                                                             *)

let test_moments () =
  let open Analytics.Sketch.Moments in
  Alcotest.(check int) "empty count" 0 (count empty);
  Alcotest.(check (float 0.)) "empty mean" 0. (mean empty);
  let m = List.fold_left add empty [ 3.; 1.; 2. ] in
  Alcotest.(check int) "count" 3 (count m);
  Alcotest.(check (float 0.)) "min" 1. (minimum m);
  Alcotest.(check (float 0.)) "max" 3. (maximum m);
  Alcotest.(check (float 1e-9)) "mean" 2. (mean m)

let test_reservoir_order_independent () =
  let open Analytics.Sketch.Reservoir in
  let feed order =
    let r = create ~capacity:8 () in
    List.iter (fun i -> add r ~tag:(Fmt.str "cell-%d" i) (float_of_int i)) order;
    values r
  in
  let forward = feed (List.init 100 Fun.id) in
  let backward = feed (List.rev (List.init 100 Fun.id)) in
  Alcotest.(check (list (float 0.)))
    "retained sample independent of arrival order" forward backward;
  Alcotest.(check int) "bounded by capacity" 8 (List.length forward)

let test_reservoir_dedup_and_percentile () =
  let open Analytics.Sketch.Reservoir in
  let r = create () in
  List.iter (fun v -> add r ~tag:"same-cell" v) [ 5.; 5.; 5. ];
  Alcotest.(check int) "identical (tag, value) collapses" 1 (size r);
  let r = create () in
  List.iter (fun i -> add r ~tag:(string_of_int i) (float_of_int i)) [ 1; 2; 3; 4 ];
  Alcotest.(check (float 0.)) "p50 nearest-rank" 2. (percentile r 50.);
  Alcotest.(check (float 0.)) "p100 is the max" 4. (percentile r 100.);
  Alcotest.(check (float 0.)) "empty percentile" 0. (percentile (create ()) 50.)

(* ------------------------------------------------------------------ *)
(* Record validation                                                    *)

let sample_record () =
  {
    Analytics.Record.scenario = 1;
    fault = "stuck=3:ca_accel_req";
    seed = 42;
    window = 0.05;
    detection = Scenarios.Campaign.Detected 0.1;
    hits = 4;
    false_negatives = 0;
    false_positives = 1;
    inhibited = 0;
    goal_flips = [ ("1", 7.8) ];
    sub_flips = [ ("NA", 1, 7.7) ];
    per_goal = [];
  }

let test_validate () =
  let ok r = Result.is_ok (Analytics.Record.validate r) in
  let r = sample_record () in
  Alcotest.(check bool) "well-formed accepted" true (ok r);
  Alcotest.(check bool) "negative counter rejected" false
    (ok { r with Analytics.Record.hits = -1 });
  Alcotest.(check bool) "non-finite window rejected" false
    (ok { r with Analytics.Record.window = Float.nan });
  Alcotest.(check bool) "non-finite flip time rejected" false
    (ok { r with Analytics.Record.goal_flips = [ ("1", Float.infinity) ] });
  Alcotest.(check bool) "out-of-range goal rejected" false
    (ok
       {
         r with
         Analytics.Record.per_goal =
           [
             {
               Scenarios.Campaign.goal = 17;
               goal_hits = 0;
               goal_false_negatives = 0;
               goal_false_positives = 0;
               goal_inhibited = 0;
             };
           ];
       })

let test_goal_lead () =
  let r = sample_record () in
  (* Goal 1's own subgoal fired 0.1 s early: anticipated. *)
  (match Analytics.Record.goal_lead r "1" with
  | Some l -> Alcotest.(check (float 1e-9)) "lead" 0.1 l
  | None -> Alcotest.fail "expected a lead");
  (* A different goal's subgoal does not anticipate goal 2. *)
  let r2 = { r with Analytics.Record.goal_flips = [ ("2", 7.8) ] } in
  Alcotest.(check bool) "foreign subgoal ineligible" true
    (Analytics.Record.goal_lead r2 "2" = None);
  (* The collision pseudo-goal accepts any subgoal monitor. *)
  let rc = { r with Analytics.Record.goal_flips = [ ("collision", 7.8) ] } in
  Alcotest.(check bool) "collision accepts any subgoal" true
    (Analytics.Record.goal_lead rc "collision" <> None);
  (* A subgoal flip after goal + window is too late. *)
  let late = { r with Analytics.Record.sub_flips = [ ("NA", 1, 7.9) ] } in
  Alcotest.(check bool) "late subgoal flip ineligible" true
    (Analytics.Record.goal_lead late "1" = None)

(* ------------------------------------------------------------------ *)
(* Stream determinism and robustness (small 2 x 2 grid)                 *)

let grid seed =
  let smoke = Scenarios.Campaign.smoke ~seed () in
  {
    Scenarios.Campaign.seed;
    faults =
      (match smoke.Scenarios.Campaign.faults with
      | a :: b :: _ -> [ a; b ]
      | _ -> Alcotest.fail "smoke grid too small");
    grid_scenarios = [ Scenarios.Defs.get 1; Scenarios.Defs.get 3 ];
  }

let tables t = (A.cascade_csv t, A.trajectory_csv t, A.residual_csv t)
let csv3 = Alcotest.(triple string string string)

let ingest_fresh path =
  let t = A.create () in
  A.ingest t path;
  t

let test_live_equals_journal () =
  with_path "live" @@ fun path ->
  let seen = ref [] in
  let live = A.create () in
  ignore
    (Scenarios.Campaign.run ~domains:1 ~journal:path
       ~on_cell:(fun c ->
         seen := c :: !seen;
         A.observe live c)
       (grid 42));
  Alcotest.(check int) "live feed saw every cell" 4 (A.records live);
  let journaled = ingest_fresh path in
  Alcotest.(check int) "journal ingest saw every cell" 4 (A.records journaled);
  Alcotest.check csv3 "live tables = journaled tables, bit-for-bit"
    (tables live) (tables journaled);
  (* Any permutation of the same cells mines to the same bytes: the
     analyzers are order-independent by construction. *)
  let reversed = A.create () in
  List.iter (A.observe reversed) !seen;
  Alcotest.check csv3 "reversed feed order, same bytes" (tables live)
    (tables reversed)

let test_parallel_producer_same_bytes () =
  with_path "seq" @@ fun p1 ->
  with_path "par" @@ fun p2 ->
  ignore (Scenarios.Campaign.run ~domains:1 ~journal:p1 (grid 42));
  Scenarios.Runner.clear_cache ();
  ignore (Scenarios.Campaign.run ~domains:2 ~journal:p2 (grid 42));
  Alcotest.check csv3 "journal append order does not leak into the tables"
    (tables (ingest_fresh p1))
    (tables (ingest_fresh p2))

let test_torn_tail_skipped () =
  with_path "torn" @@ fun path ->
  ignore (Scenarios.Campaign.run ~domains:1 ~journal:path (grid 42));
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 5);
  let t = ingest_fresh path in
  Alcotest.(check int) "intact prefix mined" 3 (A.records t);
  Alcotest.(check bool) "the tear surfaced as a skip" true (A.skipped t >= 1);
  Alcotest.(check int) "journal counted" 1 (A.journals t);
  (* The tables still render — a degraded journal mines fine. *)
  let csv = A.cascade_csv t in
  Alcotest.(check bool) "cascade table renders" true (String.length csv > 0)

let test_constant_memory_footprint () =
  with_path "mem" @@ fun path ->
  ignore (Scenarios.Campaign.run ~domains:1 ~journal:path (grid 42));
  let small = ingest_fresh path in
  (* Valid journals concatenate cleanly: 10 x the same records is a
     journal ten times the size with zero new keyed state. *)
  let big_path = tmp "mem10" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists big_path then Sys.remove big_path)
    (fun () ->
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin big_path (fun oc ->
          for _ = 1 to 10 do
            Out_channel.output_string oc bytes
          done);
      let big = ingest_fresh big_path in
      Alcotest.(check int) "10x the records streamed" (10 * A.records small)
        (A.records big);
      Alcotest.(check int) "footprint flat at 10x the input"
        (A.footprint small) (A.footprint big);
      (* Raw counts scale with the stream (every record counts), but the
         normalized surfaces are invariant under duplication: the rates
         divide it out and the reservoirs collapse identical
         observations. *)
      let rates t =
        List.map
          (fun (r : Analytics.Trajectory.row) ->
            ( (r.goal, r.fault, r.seed, r.window),
              ( r.hit_rate,
                r.false_negative_rate,
                r.false_positive_rate,
                r.inhibited_rate,
                r.flip_rate,
                r.lead_p50,
                r.lead_p95 ) ))
          (A.trajectory t)
      in
      Alcotest.(check bool) "rate surfaces invariant under duplication" true
        (rates small = rates big);
      Alcotest.(check (float 0.)) "residual fraction invariant"
        (A.residual_fraction small) (A.residual_fraction big))

(* ------------------------------------------------------------------ *)
(* Pinned goldens: the seed-42 smoke grid                               *)

(* The same 12-cell grid CI pins (`experiments campaign --seed 42`:
   detected=3 missed=4 spurious=1 no_effect=4). If a deliberate model
   change moves these bytes, re-pin them together with ANALYTICS.md and
   bench/baselines/analytics_cascade_smoke.csv. *)

let golden_cascade =
  "fault,seed,cascade,cells,scenarios,windows,goal_monitors,goal_flips,detected,\
   missed,spurious,no_effect,lead_min_s,lead_mean_s,lead_p50_s,lead_p95_s,\
   lead_max_s,first_flip_min_s,first_flip_max_s\n\
   delay=150:accel_cmd,42,1,3,3,1,1;2,4,1,2,0,0,6.85,6.85,6.85,6.85,6.85,7.042,12.354\n\
   nan:host_jerk@2..8,42,0,3,3,1,,0,0,0,0,3,,,,,,,\n\
   stuck=3:ca_accel_req,42,1,3,3,1,1;collision,3,2,0,1,0,7.788,7.805,7.788,\
   7.822,7.822,7.789,9.005\n\
   stuck=false:object_detected,42,0,3,3,1,collision,2,0,2,0,1,,,,,,7.823,9.889\n"

let golden_residual =
  "goal,flips,anticipated,residual,residual_fraction\n\
   1,2,2,0,0\n\
   2,3,1,2,0.666667\n\
   collision,4,2,2,0.5\n\
   TOTAL,9,5,4,0.444444\n"

let test_smoke_goldens () =
  let t = A.create () in
  ignore
    (Scenarios.Campaign.run ~domains:1 ~on_cell:(A.observe t)
       (Scenarios.Campaign.smoke ~seed:42 ()));
  Alcotest.(check int) "12 cells mined" 12 (A.records t);
  Alcotest.(check string) "cascade table pinned" golden_cascade (A.cascade_csv t);
  Alcotest.(check string) "residual table pinned" golden_residual (A.residual_csv t);
  Alcotest.(check int) "two cascading faults" 2
    (List.length (List.filter (fun r -> r.Analytics.Cascade.cascade) (A.cascade t)));
  (* 9 goals x 4 faults x 1 seed x 1 window. *)
  Alcotest.(check int) "trajectory surface shape" 36 (List.length (A.trajectory t))

let () =
  Alcotest.run "analytics"
    [
      ( "sketches",
        [
          Alcotest.test_case "moments" `Quick test_moments;
          Alcotest.test_case "reservoir is order-independent" `Quick
            test_reservoir_order_independent;
          Alcotest.test_case "reservoir dedup and percentiles" `Quick
            test_reservoir_dedup_and_percentile;
        ] );
      ( "records",
        [
          Alcotest.test_case "validation" `Quick test_validate;
          Alcotest.test_case "per-goal lead attribution" `Quick test_goal_lead;
        ] );
      ( "streams",
        [
          Alcotest.test_case "live = journaled = any permutation" `Slow
            test_live_equals_journal;
          Alcotest.test_case "parallel producer, same bytes" `Slow
            test_parallel_producer_same_bytes;
          Alcotest.test_case "torn tail skipped, tables intact" `Slow
            test_torn_tail_skipped;
          Alcotest.test_case "constant-memory footprint at 10x input" `Slow
            test_constant_memory_footprint;
        ] );
      ( "goldens",
        [ Alcotest.test_case "seed-42 smoke grid pinned" `Slow test_smoke_goldens ] );
    ]
